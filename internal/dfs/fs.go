package dfs

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// repRetryBackoff is how long a failed re-replication waits before the
// scan retries the block (seconds).
const repRetryBackoff = 60

// Metrics counts DFS-level events of interest to the paper's evaluation.
type Metrics struct {
	ReplicationsIssued int     // re-replication transfers started
	ReplicationBytes   float64 // bytes moved by re-replication
	ThrashReplications int     // re-replications for nodes that later returned
	DedicatedDeclines  int     // opportunistic writes declined by throttling
	AdaptiveRaises     int     // writes whose volatile degree was raised to v'
	Hibernations       int     // DataNode hibernate transitions
	Expirations        int     // DataNode dead declarations
	ReRegistrations    int     // blocks re-registered by returning dead nodes
	TrimmedReplicas    int     // excess replicas removed
	WriteRetries       int     // block write pipeline retries
	ReadStalls         int     // reads that failed on a stalled source
	FetchFailures      int     // reads failed for lack of live replicas
}

// FileSystem is the simulated DFS: one NameNode plus one DataNode per
// cluster node.
type FileSystem struct {
	sim *sim.Simulation
	cl  *cluster.Cluster
	net *netmodel.Network
	cfg Config

	files     map[string]*File
	fileOrder []string

	dn []*dnView

	// NameNode's unavailability estimate: ring of samples of the
	// fraction of volatile DataNodes down.
	pSamples []float64
	pCount   int
	pNext    int

	// pendingRep marks blocks with an in-flight re-replication so scans
	// don't double-issue; repBackoff delays retries of blocks whose last
	// re-replication failed (stalled transfers must not be re-issued
	// every scan, or a churning fleet drowns in I/O to dead nodes).
	pendingRep map[BlockID]int
	repBackoff map[BlockID]float64
	repStreams int

	cursorV, cursorD int

	// scanTargets is the reusable target buffer for replication-scan
	// placement (scanBlock consumes each choice before the next call).
	scanTargets []int

	Metrics Metrics
	inst    fsInstruments
}

// fsInstruments mirrors the Metrics counters onto the metrics bus (plus
// read/write byte timelines the aggregate struct never tracked). All
// handles are nil without a collector, and nil handles no-op.
type fsInstruments struct {
	repIssued     *metrics.Counter
	repBytes      *metrics.Counter
	thrash        *metrics.Counter
	declines      *metrics.Counter
	raises        *metrics.Counter
	hibernations  *metrics.Counter
	expirations   *metrics.Counter
	reRegs        *metrics.Counter
	trims         *metrics.Counter
	writeRetries  *metrics.Counter
	readStalls    *metrics.Counter
	fetchFailures *metrics.Counter
	writeBytes    *metrics.Counter
	readBytes     *metrics.Counter
}

// Instrument registers DFS observability on c: replication traffic (bytes
// and transfers, time-bucketed), placement retries, throttling declines and
// adaptive-degree raises, hibernate/expire transitions, re-registrations,
// trims, and the unreachable-read failure modes (stalls and no-replica
// fetch failures), plus client read/write byte timelines.
func (fs *FileSystem) Instrument(c *metrics.Collector) {
	if c == nil {
		return
	}
	fs.inst = fsInstruments{
		repIssued:     c.TimedCounter(metrics.LayerDFS, "replications_issued", ""),
		repBytes:      c.TimedCounter(metrics.LayerDFS, "replication_bytes", ""),
		thrash:        c.Counter(metrics.LayerDFS, "thrash_replications", ""),
		declines:      c.TimedCounter(metrics.LayerDFS, "dedicated_declines", ""),
		raises:        c.Counter(metrics.LayerDFS, "adaptive_raises", ""),
		hibernations:  c.TimedCounter(metrics.LayerDFS, "hibernations", ""),
		expirations:   c.TimedCounter(metrics.LayerDFS, "expirations", ""),
		reRegs:        c.Counter(metrics.LayerDFS, "re_registrations", ""),
		trims:         c.Counter(metrics.LayerDFS, "trimmed_replicas", ""),
		writeRetries:  c.TimedCounter(metrics.LayerDFS, "write_retries", ""),
		readStalls:    c.TimedCounter(metrics.LayerDFS, "read_stalls", ""),
		fetchFailures: c.TimedCounter(metrics.LayerDFS, "fetch_failures", ""),
		writeBytes:    c.TimedCounter(metrics.LayerDFS, "write_bytes", ""),
		readBytes:     c.TimedCounter(metrics.LayerDFS, "read_bytes", ""),
	}
}

// New builds the file system over the cluster and network and starts the
// NameNode's periodic services (replication scan, p estimator, throttling
// monitor, expiry tracking).
func New(s *sim.Simulation, cl *cluster.Cluster, net *netmodel.Network, cfg Config) (*FileSystem, error) {
	cfg = cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := &FileSystem{
		sim:        s,
		cl:         cl,
		net:        net,
		cfg:        cfg,
		files:      make(map[string]*File),
		pendingRep: make(map[BlockID]int),
		repBackoff: make(map[BlockID]float64),
		pSamples:   make([]float64, cfg.PWindow),
	}
	for _, n := range cl.Nodes {
		v := &dnView{node: n}
		fs.dn = append(fs.dn, v)
		n.Watch(fs.nodeChanged)
	}
	s.Ticker(cfg.ReplicationScanInterval, "dfs.scan", fs.replicationScan)
	s.Ticker(cfg.PSampleInterval, "dfs.psample", fs.sampleP)
	s.Ticker(cfg.ThrottleSampleInterval, "dfs.throttle", fs.sampleThrottle)
	return fs, nil
}

// dnView is the NameNode's record of one DataNode.
type dnView struct {
	node        *cluster.Node
	state       DNState
	hibernateEv sim.Event
	expiryEv    sim.Event

	// Throttling state (dedicated nodes only).
	bwWindow     []float64
	lastConsumed float64
	throttled    bool

	// wasDead marks a node whose replicas were deregistered, for the
	// thrashing metric and block re-report on return.
	deadSince float64
}

// View returns the NameNode's state for a DataNode.
func (fs *FileSystem) View(nodeID int) DNState { return fs.dn[nodeID].state }

// Throttled reports whether the dedicated DataNode is currently declining
// opportunistic writes.
func (fs *FileSystem) Throttled(nodeID int) bool { return fs.dn[nodeID].throttled }

// Config returns the effective configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// nodeChanged tracks heartbeat loss and recovery.
func (fs *FileSystem) nodeChanged(n *cluster.Node, available bool) {
	v := fs.dn[n.ID]
	if !available {
		if fs.cfg.Mode == ModeMOON && fs.cfg.NodeHibernateInterval > 0 {
			v.hibernateEv = fs.sim.After(fs.cfg.NodeHibernateInterval, "dfs.hibernate", func() {
				if v.state == DNLive {
					v.state = DNHibernate
					fs.Metrics.Hibernations++
					fs.inst.hibernations.IncAt(fs.sim.Now())
				}
			})
		}
		v.expiryEv = fs.sim.After(fs.cfg.NodeExpiryInterval, "dfs.expire", func() {
			fs.expire(v)
		})
		return
	}
	fs.sim.Cancel(v.hibernateEv)
	fs.sim.Cancel(v.expiryEv)
	v.hibernateEv, v.expiryEv = sim.Event{}, sim.Event{}
	wasDead := v.state == DNDead
	v.state = DNLive
	if wasDead {
		fs.reRegister(v)
	}
}

// expire declares the DataNode dead and deregisters its replicas (the data
// stays on disk and is re-reported if the node returns).
func (fs *FileSystem) expire(v *dnView) {
	if v.state == DNDead {
		return
	}
	v.state = DNDead
	v.deadSince = fs.sim.Now()
	fs.Metrics.Expirations++
	fs.inst.expirations.IncAt(v.deadSince)
	for _, name := range fs.fileOrder {
		for _, b := range fs.files[name].Blocks {
			removeInt(&b.replicas, v.node.ID)
		}
	}
}

// reRegister re-adds the block replicas still on a returning node's disk.
func (fs *FileSystem) reRegister(v *dnView) {
	id := v.node.ID
	for _, name := range fs.fileOrder {
		for _, b := range fs.files[name].Blocks {
			if b.onDisk[id] && !containsInt(b.replicas, id) {
				b.replicas = append(b.replicas, id)
				fs.Metrics.ReRegistrations++
				fs.inst.reRegs.Inc()
			}
		}
	}
}

// registerReplica records a completed replica write.
func (fs *FileSystem) registerReplica(b *Block, nodeID int) {
	if b.onDisk == nil {
		b.onDisk = make(map[int]bool)
	}
	b.onDisk[nodeID] = true
	if !containsInt(b.replicas, nodeID) {
		b.replicas = append(b.replicas, nodeID)
	}
}

// dropReplica removes a replica both from registration and disk.
func (fs *FileSystem) dropReplica(b *Block, nodeID int) {
	removeInt(&b.replicas, nodeID)
	delete(b.onDisk, nodeID)
}

// liveReplicas returns the replica node IDs the NameNode would serve from:
// registered on a DataNode it believes live.
func (fs *FileSystem) liveReplicas(b *Block) []int {
	var out []int
	for _, id := range b.replicas {
		if fs.dn[id].state == DNLive {
			out = append(out, id)
		}
	}
	return out
}

// dedicatedLive reports whether the block has a replica on a live dedicated
// node.
func (fs *FileSystem) dedicatedLive(b *Block) bool {
	for _, id := range b.replicas {
		if fs.dn[id].state == DNLive && fs.dn[id].node.IsDedicated() {
			return true
		}
	}
	return false
}

// HasLiveReplica reports whether any replica of the block is currently
// servable — the query MOON's JobTracker issues after repeated fetch
// failures to decide whether to re-execute the producing Map task.
func (fs *FileSystem) HasLiveReplica(id BlockID) bool {
	b := fs.lookupBlock(id)
	if b == nil {
		return false
	}
	for _, rid := range b.replicas {
		if fs.dn[rid].state == DNLive {
			return true
		}
	}
	return false
}

// FileFullyReplicated reports whether every block of the file meets its
// replication factor on live nodes. MOON marks a job complete only once its
// output file reaches this state.
func (fs *FileSystem) FileFullyReplicated(name string) bool {
	f := fs.files[name]
	if f == nil {
		return false
	}
	for _, b := range f.Blocks {
		needD, needV := fs.required(f, b)
		d, v := fs.countLive(b)
		if fs.cfg.Mode == ModeHadoop {
			if d+v < needD+needV {
				return false
			}
		} else if d < needD || v < needV {
			return false
		}
	}
	return true
}

// File returns the file record, or nil.
func (fs *FileSystem) File(name string) *File { return fs.files[name] }

// Exists reports whether the file exists.
func (fs *FileSystem) Exists(name string) bool { return fs.files[name] != nil }

func (fs *FileSystem) lookupBlock(id BlockID) *Block {
	f := fs.files[id.File]
	if f == nil || id.Index < 0 || id.Index >= len(f.Blocks) {
		return nil
	}
	return f.Blocks[id.Index]
}

// createFile registers a new empty file and its block skeleton.
func (fs *FileSystem) createFile(name string, size float64, class FileClass, factor Factor) (*File, error) {
	if fs.files[name] != nil {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	if err := factor.Validate(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("dfs: file %s size %v must be positive", name, size)
	}
	f := &File{Name: name, Class: class, Factor: factor}
	nblocks := int(math.Ceil(size / fs.cfg.BlockSize))
	rem := size
	for i := 0; i < nblocks; i++ {
		bs := math.Min(rem, fs.cfg.BlockSize)
		f.Blocks = append(f.Blocks, &Block{
			ID:     BlockID{File: name, Index: i},
			Size:   bs,
			onDisk: make(map[int]bool),
			file:   f,
		})
		rem -= bs
	}
	fs.files[name] = f
	fs.fileOrder = append(fs.fileOrder, name)
	return f, nil
}

// CreateStaged creates a file and instantly materializes its replicas per
// the placement policy, with no simulated I/O cost. It models input data
// staged before the job starts (the paper stages inputs with the tools
// shipped with Hadoop before measuring).
func (fs *FileSystem) CreateStaged(name string, size float64, class FileClass, factor Factor) (*File, error) {
	f, err := fs.createFile(name, size, class, factor)
	if err != nil {
		return nil, err
	}
	for _, b := range f.Blocks {
		needD, needV := fs.required(f, b)
		if fs.cfg.Mode == ModeHadoop {
			for _, t := range fs.chooseAny(nil, needD+needV, nil) {
				fs.registerReplica(b, t)
			}
			continue
		}
		for _, t := range fs.chooseDedicated(nil, needD, nil) {
			fs.registerReplica(b, t)
		}
		for _, t := range fs.chooseVolatile(nil, needV, nil) {
			fs.registerReplica(b, t)
		}
	}
	return f, nil
}

// Delete removes the file and all replicas.
func (fs *FileSystem) Delete(name string) {
	f := fs.files[name]
	if f == nil {
		return
	}
	delete(fs.files, name)
	for i, n := range fs.fileOrder {
		if n == name {
			fs.fileOrder = append(fs.fileOrder[:i], fs.fileOrder[i+1:]...)
			break
		}
	}
	for _, b := range f.Blocks {
		delete(fs.pendingRep, b.ID)
		delete(fs.repBackoff, b.ID)
	}
}

// Commit converts an opportunistic output file to reliable (MOON does this
// when all Reduce tasks of a job finish); the replication scan then tops up
// missing dedicated copies.
func (fs *FileSystem) Commit(name string) error {
	f := fs.files[name]
	if f == nil {
		return fmt.Errorf("%w: %s", ErrUnknownFile, name)
	}
	f.Class = Reliable
	f.committed = true
	return nil
}

// BlockLocations returns the node IDs holding live replicas of a block, for
// locality-aware task placement.
func (fs *FileSystem) BlockLocations(id BlockID) []int {
	b := fs.lookupBlock(id)
	if b == nil {
		return nil
	}
	return fs.liveReplicas(b)
}

// HasReplicaOn reports whether the node holds a live replica of the block —
// the allocation-free locality test the scheduler runs for every pending
// map on every heartbeat.
func (fs *FileSystem) HasReplicaOn(id BlockID, nodeID int) bool {
	b := fs.lookupBlock(id)
	if b == nil {
		return false
	}
	for _, rid := range b.replicas {
		if rid == nodeID && fs.dn[rid].state == DNLive {
			return true
		}
	}
	return false
}

// --- NameNode periodic services -------------------------------------------

// sampleP records the instantaneous fraction of unavailable volatile nodes;
// EstimateP averages the window (the paper's "monitor the fraction of
// unavailable DataNodes during the past interval I").
func (fs *FileSystem) sampleP() {
	fs.pSamples[fs.pNext] = fs.cl.VolatileUnavailableFraction()
	fs.pNext = (fs.pNext + 1) % len(fs.pSamples)
	if fs.pCount < len(fs.pSamples) {
		fs.pCount++
	}
}

// EstimateP returns the NameNode's current estimate of the volatile-node
// unavailability rate p.
func (fs *FileSystem) EstimateP() float64 {
	if fs.pCount == 0 {
		return fs.cl.VolatileUnavailableFraction()
	}
	sum := 0.0
	for i := 0; i < fs.pCount; i++ {
		sum += fs.pSamples[i]
	}
	return sum / float64(fs.pCount)
}

// AdaptiveV returns the smallest volatile replication degree v' such that
// 1 - p^v' exceeds the availability target, clamped to [1, MaxAdaptiveV].
func (fs *FileSystem) AdaptiveV() int {
	p := fs.EstimateP()
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return fs.cfg.MaxAdaptiveV
	}
	// 1 - p^v > target  <=>  v > log(1-target)/log(p).
	v := int(math.Floor(math.Log(1-fs.cfg.AvailabilityTarget)/math.Log(p))) + 1
	if v < 1 {
		v = 1
	}
	if v > fs.cfg.MaxAdaptiveV {
		v = fs.cfg.MaxAdaptiveV
	}
	return v
}

// required returns the dedicated/volatile replica targets for a block under
// the current policy. For Hadoop mode the two counts collapse into a single
// total (reported as needV with needD = 0).
func (fs *FileSystem) required(f *File, b *Block) (needD, needV int) {
	if fs.cfg.Mode == ModeHadoop {
		return 0, f.Factor.D + f.Factor.V
	}
	needD, needV = f.Factor.D, f.Factor.V
	if f.Class == Opportunistic && needD > 0 && !fs.dedicatedLive(b) {
		// No dedicated copy: availability rests on volatile replicas, so
		// the volatile degree adapts to v'.
		if av := fs.AdaptiveV(); av > needV {
			needV = av
		}
	}
	return needD, needV
}

// countLive counts live dedicated and volatile replicas. In MOON mode,
// volatile replicas on *hibernating* nodes still count unless the block
// belongs to an opportunistic file without a live dedicated copy — the
// paper's rule: "only opportunistic files without dedicated replicas will
// be re-replicated" when nodes hibernate, which is what prevents
// replication thrashing on transient outages.
func (fs *FileSystem) countLive(b *Block) (d, v int) {
	protected := b.file.Class == Reliable || fs.dedicatedLive(b)
	for _, id := range b.replicas {
		view := fs.dn[id]
		switch {
		case view.state == DNLive && view.node.IsDedicated():
			d++
		case view.state == DNLive:
			v++
		case view.state == DNHibernate && !view.node.IsDedicated() &&
			fs.cfg.Mode == ModeMOON && protected:
			v++
		}
	}
	return d, v
}

// replicationScan walks all blocks, re-replicating under-replicated ones
// (reliable files first) and trimming excess replicas.
func (fs *FileSystem) replicationScan() {
	// Two passes: reliable files have priority for replication streams.
	for _, wantReliable := range []bool{true, false} {
		for _, name := range fs.fileOrder {
			f := fs.files[name]
			if (f.Class == Reliable) != wantReliable {
				continue
			}
			for _, b := range f.Blocks {
				fs.scanBlock(f, b)
			}
		}
	}
}

func (fs *FileSystem) scanBlock(f *File, b *Block) {
	if f.underConstruction {
		return
	}
	if until, ok := fs.repBackoff[b.ID]; ok {
		if fs.sim.Now() < until {
			return
		}
		delete(fs.repBackoff, b.ID)
	}
	needD, needV := fs.required(f, b)
	d, v := fs.countLive(b)
	pend := fs.pendingRep[b.ID]

	if fs.cfg.Mode == ModeHadoop {
		total, needTotal := d+v, needD+needV
		switch {
		case total+pend < needTotal:
			fs.scanTargets = fs.chooseAny(fs.scanTargets[:0], 1, b.replicas)
			fs.issueReplication(b, fs.scanTargets)
		case total > needTotal && pend == 0:
			fs.trimExcess(b, total-needTotal, false)
		}
		return
	}

	// MOON: dedicated deficit first (a reliable file's dedicated write is
	// always honored; opportunistic dedicated copies are best-effort and
	// skipped while the dedicated tier is throttled).
	if d+pend < needD {
		if f.Class == Reliable || !fs.allDedicatedThrottled() {
			fs.scanTargets = fs.chooseDedicated(fs.scanTargets[:0], 1, b.replicas)
			fs.issueReplication(b, fs.scanTargets)
		}
	}
	if v+pend < needV {
		fs.scanTargets = fs.chooseVolatile(fs.scanTargets[:0], 1, b.replicas)
		fs.issueReplication(b, fs.scanTargets)
	}
	if v > needV && pend == 0 {
		fs.trimExcess(b, v-needV, true)
	}
	if d > needD && pend == 0 {
		fs.trimDedicatedExcess(b, d-needD)
	}
}

// trimDedicatedExcess removes surplus dedicated replicas (can arise when a
// relay write and an earlier scan both placed dedicated copies).
func (fs *FileSystem) trimDedicatedExcess(b *Block, n int) {
	for i := len(b.replicas) - 1; i >= 0 && n > 0; i-- {
		id := b.replicas[i]
		if !fs.dn[id].node.IsDedicated() {
			continue
		}
		fs.dropReplica(b, id)
		fs.Metrics.TrimmedReplicas++
		fs.inst.trims.Inc()
		n--
	}
}

// issueReplication starts one re-replication transfer to the first target,
// respecting the global stream cap.
func (fs *FileSystem) issueReplication(b *Block, targets []int) {
	if len(targets) == 0 || fs.repStreams >= fs.cfg.MaxReplicationStreams {
		return
	}
	src := fs.pickSource(b)
	if src < 0 {
		return
	}
	dst := targets[0]
	fs.pendingRep[b.ID]++
	fs.repStreams++
	fs.Metrics.ReplicationsIssued++
	fs.inst.repIssued.IncAt(fs.sim.Now())
	srcDown := !fs.dn[src].node.Available()
	fs.net.Transfer(fs.dn[src].node, fs.dn[dst].node, b.Size, func(err error) {
		fs.repStreams--
		if fs.pendingRep[b.ID]--; fs.pendingRep[b.ID] <= 0 {
			delete(fs.pendingRep, b.ID)
		}
		if err != nil {
			// Back the block off before retrying: the failure usually
			// means an endpoint is silently gone, and immediate retries
			// through the same stale view just stall again.
			fs.repBackoff[b.ID] = fs.sim.Now() + repRetryBackoff
			return
		}
		fs.Metrics.ReplicationBytes += b.Size
		fs.inst.repBytes.AddAt(fs.sim.Now(), b.Size)
		if srcDown || fs.dn[src].state == DNDead {
			// Replicated a block whose holder was only transiently away.
			fs.Metrics.ThrashReplications++
			fs.inst.thrash.Inc()
		}
		fs.registerReplica(b, dst)
	})
}

// trimExcess deregisters n excess replicas; volatileOnly restricts trimming
// to volatile holders (MOON never gives up dedicated copies).
func (fs *FileSystem) trimExcess(b *Block, n int, volatileOnly bool) {
	for i := len(b.replicas) - 1; i >= 0 && n > 0; i-- {
		id := b.replicas[i]
		if volatileOnly && fs.dn[id].node.IsDedicated() {
			continue
		}
		fs.dropReplica(b, id)
		fs.Metrics.TrimmedReplicas++
		fs.inst.trims.Inc()
		n--
	}
}

// pickSource chooses the least-loaded live replica holder, preferring
// volatile sources so replication reads spare the dedicated tier (the
// paper's read prioritization applied to replication traffic).
func (fs *FileSystem) pickSource(b *Block) int {
	best, bestKey := -1, [2]int{1 << 30, 1 << 30}
	for _, id := range b.replicas {
		if fs.dn[id].state != DNLive {
			continue
		}
		tier := 0
		if fs.cfg.Mode == ModeMOON && fs.dn[id].node.IsDedicated() {
			tier = 1
		}
		key := [2]int{tier*1000000 + fs.net.ActiveFlows(id), id}
		if best == -1 || key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]) {
			best, bestKey = id, key
		}
	}
	return best
}

// --- helpers ---------------------------------------------------------------

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func removeInt(s *[]int, x int) {
	for i, v := range *s {
		if v == x {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}

// SetThrottledForTest pins a dedicated node's throttle state; test hook.
func (fs *FileSystem) SetThrottledForTest(nodeID int, throttled bool) {
	fs.dn[nodeID].throttled = throttled
}
