package dfs

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rig is a small test fixture: 4 volatile + 2 dedicated nodes, 100 B/s NIC,
// 1000-byte blocks for easy arithmetic.
type rig struct {
	s   *sim.Simulation
	c   *cluster.Cluster
	net *netmodel.Network
	fs  *FileSystem
}

func newRig(t *testing.T, mode Mode, outages map[int][]trace.Interval) *rig {
	t.Helper()
	s := sim.New()
	traces := make([]trace.Trace, 4)
	for i := range traces {
		traces[i] = trace.Trace{Duration: 1e6, Outages: outages[i]}
	}
	c := cluster.New(s, cluster.Config{VolatileTraces: traces, DedicatedNodes: 2})
	net := netmodel.New(s, c, netmodel.Config{NodeBandwidth: 100, DiskBandwidth: 200, StallTimeout: 60})
	cfg := DefaultConfig(mode)
	cfg.BlockSize = 1000
	fs, err := New(s, c, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{s: s, c: c, net: net, fs: fs}
}

func TestCreateStagedMOONPlacement(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	f, err := r.fs.CreateStaged("input", 3000, Reliable, Factor{D: 1, V: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	for _, b := range f.Blocks {
		d, v := r.fs.countLive(b)
		if d != 1 || v != 3 {
			t.Fatalf("block %v staged with {%d,%d}, want {1,3}", b.ID, d, v)
		}
	}
	if !r.fs.FileFullyReplicated("input") {
		t.Fatal("staged file not fully replicated")
	}
}

func TestCreateStagedHadoopPlacement(t *testing.T) {
	r := newRig(t, ModeHadoop, nil)
	f, err := r.fs.CreateStaged("input", 1000, Reliable, Factor{V: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Blocks[0].replicas); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
}

func TestCreateStagedErrors(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{}); err == nil {
		t.Fatal("zero factor accepted")
	}
	if _, err := r.fs.CreateStaged("f", -1, Reliable, Factor{V: 1}); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{V: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{V: 1}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestWritePipelineTimingAndPlacement(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	from := r.c.Node(0) // volatile
	var doneAt float64 = -1
	var errGot error
	_, err := r.fs.Write(from, "out", 1000, Opportunistic, Factor{D: 1, V: 1}, func(e error) {
		doneAt, errGot = r.s.Now(), e
	})
	if err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(1000)
	if errGot != nil {
		t.Fatalf("write failed: %v", errGot)
	}
	// Local disk copy (1000 B at 200 B/s = 5 s) then relay to a dedicated
	// node (1000 B at 100 B/s = 10 s): 15 s total.
	if math.Abs(doneAt-15) > 1e-6 {
		t.Fatalf("write finished at %v, want 15", doneAt)
	}
	b := r.fs.File("out").Blocks[0]
	d, v := r.fs.countLive(b)
	if d != 1 || v != 1 {
		t.Fatalf("placed {%d,%d}, want {1,1}", d, v)
	}
	if !containsInt(b.replicas, 0) {
		t.Fatal("writer's local copy missing")
	}
}

func TestWriteReliableMultiVolatile(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	var errGot error
	done := false
	_, err := r.fs.Write(r.c.Node(1), "rel", 1000, Reliable, Factor{D: 1, V: 3}, func(e error) {
		errGot, done = e, true
	})
	if err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(10000)
	if !done || errGot != nil {
		t.Fatalf("done=%v err=%v", done, errGot)
	}
	d, v := r.fs.countLive(r.fs.File("rel").Blocks[0])
	if d != 1 || v != 3 {
		t.Fatalf("placed {%d,%d}, want {1,3}", d, v)
	}
}

func TestWriteDeclinedWhenDedicatedThrottled(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	// Force both dedicated nodes throttled.
	for _, id := range []int{4, 5} {
		r.fs.dn[id].throttled = true
	}
	declinesBefore := r.fs.Metrics.DedicatedDeclines
	done := false
	_, err := r.fs.Write(r.c.Node(0), "opp", 1000, Opportunistic, Factor{D: 1, V: 1}, func(e error) {
		if e != nil {
			t.Errorf("write failed: %v", e)
		}
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(10000)
	if !done {
		t.Fatal("write never completed")
	}
	if r.fs.Metrics.DedicatedDeclines <= declinesBefore {
		t.Fatal("throttled dedicated tier did not decline")
	}
	b := r.fs.File("opp").Blocks[0]
	d, _ := r.fs.countLive(b)
	if d != 0 {
		t.Fatalf("dedicated copies = %d, want 0 (declined)", d)
	}
	// Reliable writes must still be satisfied on dedicated nodes.
	done = false
	_, err = r.fs.Write(r.c.Node(1), "rel2", 1000, Reliable, Factor{D: 1, V: 1}, func(e error) { done = true })
	if err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(20000)
	d, _ = r.fs.countLive(r.fs.File("rel2").Blocks[0])
	if !done || d != 1 {
		t.Fatalf("reliable write under throttling: done=%v d=%d", done, d)
	}
}

func TestAdaptiveV(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	// Manually load p samples.
	set := func(p float64) {
		for i := range r.fs.pSamples {
			r.fs.pSamples[i] = p
		}
		r.fs.pCount = len(r.fs.pSamples)
	}
	cases := []struct {
		p    float64
		want int
	}{
		{0.0, 1},
		{0.1, 2}, // 1-0.1 = 0.9 is not strictly > 0.9, so two copies
		{0.3, 2}, // 1-0.3^2 = 0.91 > 0.9
		{0.5, 4}, // 1-0.5^3 = 0.875 < 0.9; 1-0.5^4 = 0.9375
		{0.9, 6}, // clamped by MaxAdaptiveV=6 (the bound needs 22)
	}
	for _, c := range cases {
		set(c.p)
		if got := r.fs.AdaptiveV(); got != c.want {
			t.Fatalf("AdaptiveV(p=%v) = %d, want %d", c.p, got, c.want)
		}
		// The availability bound must hold whenever not clamped.
		v := r.fs.AdaptiveV()
		if v < r.fs.cfg.MaxAdaptiveV && c.p > 0 {
			if 1-math.Pow(c.p, float64(v)) <= r.fs.cfg.AvailabilityTarget {
				t.Fatalf("p=%v v=%d violates availability bound", c.p, v)
			}
		}
	}
}

func TestReadPrefersLocalThenVolatile(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{D: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	b := r.fs.File("f").Blocks[0]
	// Reader holding a replica reads locally.
	var local *cluster.Node
	for _, id := range b.replicas {
		if !r.fs.dn[id].node.IsDedicated() {
			local = r.fs.dn[id].node
			break
		}
	}
	gotSrc := -1
	if _, err := r.fs.ReadBlock(local, b.ID, 0, nil, func(src int, err error) { gotSrc = src }); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(100)
	if gotSrc != local.ID {
		t.Fatalf("read source %d, want local %d", gotSrc, local.ID)
	}
	// A volatile non-holder prefers volatile replicas over dedicated.
	var reader *cluster.Node
	for _, n := range r.c.Volatile {
		if !containsInt(b.replicas, n.ID) {
			reader = n
			break
		}
	}
	gotSrc = -1
	if _, err := r.fs.ReadBlock(reader, b.ID, 0, nil, func(src int, err error) { gotSrc = src }); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(200)
	if gotSrc < 0 || r.fs.dn[gotSrc].node.IsDedicated() {
		t.Fatalf("volatile reader chose dedicated source %d", gotSrc)
	}
}

func TestReadFallsBackToDedicated(t *testing.T) {
	// All volatile holders excluded → dedicated replica serves.
	r := newRig(t, ModeMOON, nil)
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{D: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	b := r.fs.File("f").Blocks[0]
	var exclude []int
	for _, id := range b.replicas {
		if !r.fs.dn[id].node.IsDedicated() {
			exclude = append(exclude, id)
		}
	}
	var reader *cluster.Node
	for _, n := range r.c.Volatile {
		if !containsInt(b.replicas, n.ID) {
			reader = n
			break
		}
	}
	gotSrc := -1
	if _, err := r.fs.ReadBlock(reader, b.ID, 0, exclude, func(src int, err error) { gotSrc = src }); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(100)
	if gotSrc < 0 || !r.fs.dn[gotSrc].node.IsDedicated() {
		t.Fatalf("fallback source %d not dedicated", gotSrc)
	}
}

func TestReadNoReplica(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	if _, err := r.fs.CreateStaged("f", 1000, Opportunistic, Factor{V: 1}); err != nil {
		t.Fatal(err)
	}
	b := r.fs.File("f").Blocks[0]
	holder := b.replicas[0]
	ff := r.fs.Metrics.FetchFailures
	_, err := r.fs.ReadBlock(r.c.Node(3), b.ID, 0, []int{holder}, func(int, error) {
		t.Error("done fired for ErrNoReplica")
	})
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
	if r.fs.Metrics.FetchFailures != ff+1 {
		t.Fatal("fetch failure not counted")
	}
	if _, err := r.fs.ReadBlock(r.c.Node(3), BlockID{File: "nope"}, 0, nil, nil); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("unknown file: %v", err)
	}
}

func TestPartialRead(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{D: 1, V: 1}); err != nil {
		t.Fatal(err)
	}
	b := r.fs.File("f").Blocks[0]
	var reader *cluster.Node
	for _, n := range r.c.Volatile {
		if !containsInt(b.replicas, n.ID) {
			reader = n
		}
	}
	start := r.s.Now()
	var doneAt float64
	if _, err := r.fs.ReadBlock(reader, b.ID, 100, nil, func(int, error) { doneAt = r.s.Now() }); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(100)
	// 100 bytes at 100 B/s = 1 s.
	if math.Abs(doneAt-start-1) > 1e-6 {
		t.Fatalf("partial read took %v, want 1", doneAt-start)
	}
}

func TestExpiryDeregistersAndReplicates(t *testing.T) {
	// Node 0 suspends at t=100 and never returns (outage to horizon).
	r := newRig(t, ModeMOON, map[int][]trace.Interval{
		0: {{Start: 100, End: 9e5}},
	})
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{D: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	b := r.fs.File("f").Blocks[0]
	if !containsInt(b.replicas, 0) {
		t.Skip("staging did not use node 0; cursor layout changed")
	}
	r.s.RunUntil(100 + r.fs.cfg.NodeExpiryInterval + 120)
	if r.fs.View(0) != DNDead {
		t.Fatalf("node 0 view = %v, want dead", r.fs.View(0))
	}
	if containsInt(b.replicas, 0) {
		t.Fatal("dead node's replica still registered")
	}
	// Replication scan must have restored {1,2} on other nodes.
	d, v := r.fs.countLive(b)
	if d < 1 || v < 2 {
		t.Fatalf("after expiry: {%d,%d}, want at least {1,2}", d, v)
	}
	if r.fs.Metrics.ReplicationsIssued == 0 {
		t.Fatal("no re-replication issued")
	}
}

func TestHibernateSuppressesReplicationWithDedicatedCopy(t *testing.T) {
	// MOON: a block with a dedicated replica must NOT re-replicate when a
	// volatile holder merely hibernates.
	r := newRig(t, ModeMOON, map[int][]trace.Interval{
		1: {{Start: 50, End: 400}}, // longer than hibernate (90), shorter than expiry (600)
	})
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{D: 1, V: 1}); err != nil {
		t.Fatal(err)
	}
	b := r.fs.File("f").Blocks[0]
	if !containsInt(b.replicas, 1) {
		t.Skip("staging did not use node 1")
	}
	r.s.RunUntil(300)
	if r.fs.View(1) != DNHibernate {
		t.Fatalf("node 1 view = %v, want hibernate", r.fs.View(1))
	}
	if r.fs.Metrics.ReplicationsIssued != 0 {
		t.Fatalf("%d replications issued for a dedicated-backed block", r.fs.Metrics.ReplicationsIssued)
	}
	r.s.RunUntil(1000)
	if r.fs.View(1) != DNLive {
		t.Fatal("node 1 did not return to live")
	}
}

func TestHibernateReplicatesUnbackedOpportunistic(t *testing.T) {
	// An opportunistic block with NO dedicated copy must re-replicate when
	// one of its holders hibernates (a hibernating replica only counts
	// when a dedicated copy exists).
	r := newRig(t, ModeMOON, map[int][]trace.Interval{
		2: {{Start: 50, End: 400}},
	})
	f, err := r.fs.CreateStaged("opp", 1000, Opportunistic, Factor{V: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	// Pin the replicas to nodes 1 (stays live) and 2 (hibernates).
	for _, id := range append([]int(nil), b.replicas...) {
		r.fs.dropReplica(b, id)
	}
	r.fs.registerReplica(b, 1)
	r.fs.registerReplica(b, 2)
	r.s.RunUntil(350) // hibernate at 140, scan + ~10s copy well before 350
	if r.fs.View(2) != DNHibernate {
		t.Fatalf("node 2 view = %v, want hibernate", r.fs.View(2))
	}
	d, v := r.fs.countLive(b)
	if d+v < 2 {
		t.Fatalf("unbacked opportunistic block not re-replicated: {%d,%d}", d, v)
	}
	if r.fs.Metrics.ReplicationsIssued == 0 {
		t.Fatal("no replication issued for unbacked block")
	}
}

func TestHibernateSoleReplicaCannotReplicate(t *testing.T) {
	// When the ONLY replica hibernates there is no live source: the data
	// is temporarily unavailable and no replication can be issued — the
	// QoS gap the paper's task re-execution covers.
	r := newRig(t, ModeMOON, map[int][]trace.Interval{
		2: {{Start: 50, End: 400}},
	})
	f, err := r.fs.CreateStaged("opp", 1000, Opportunistic, Factor{V: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	for _, id := range append([]int(nil), b.replicas...) {
		r.fs.dropReplica(b, id)
	}
	r.fs.registerReplica(b, 2)
	r.s.RunUntil(350)
	if r.fs.HasLiveReplica(b.ID) {
		t.Fatal("hibernating sole replica reported live")
	}
	if r.fs.Metrics.ReplicationsIssued != 0 {
		t.Fatal("replication issued with no live source")
	}
	r.s.RunUntil(1000)
	if !r.fs.HasLiveReplica(b.ID) {
		t.Fatal("replica not servable after holder returned")
	}
}

func TestDeadNodeReRegistersOnReturn(t *testing.T) {
	// MOON's default expiry is 1800 s; the outage must exceed it.
	r := newRig(t, ModeMOON, map[int][]trace.Interval{
		0: {{Start: 10, End: 2500}}, // expires at 1810, returns at 2500
	})
	f, err := r.fs.CreateStaged("f", 1000, Opportunistic, Factor{V: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	for _, id := range append([]int(nil), b.replicas...) {
		r.fs.dropReplica(b, id)
	}
	r.fs.registerReplica(b, 0)
	r.fs.registerReplica(b, 1)
	r.s.RunUntil(2000)
	if containsInt(b.replicas, 0) {
		t.Fatal("dead node still registered")
	}
	r.s.RunUntil(4000)
	// The returning node re-reports its block; the scan may then trim it
	// again as excess, so assert the re-report happened and the block
	// stays at (or above) factor.
	if r.fs.Metrics.ReRegistrations == 0 {
		t.Fatal("re-registration not counted")
	}
	if _, v := r.fs.countLive(b); v < 2 {
		t.Fatalf("live volatile replicas = %d, want >= 2", v)
	}
}

func TestHadoopModeHasNoHibernate(t *testing.T) {
	r := newRig(t, ModeHadoop, map[int][]trace.Interval{
		1: {{Start: 50, End: 400}},
	})
	r.s.RunUntil(300)
	if r.fs.View(1) == DNHibernate {
		t.Fatal("Hadoop mode entered hibernate")
	}
	if r.fs.View(1) != DNLive {
		t.Fatalf("node 1 view = %v, want live (expiry is 600)", r.fs.View(1))
	}
}

func TestCommitTopsUpDedicated(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	// Opportunistic file without a dedicated copy (both dedicated
	// throttled at write time).
	r.fs.dn[4].throttled = true
	r.fs.dn[5].throttled = true
	done := false
	if _, err := r.fs.Write(r.c.Node(0), "out", 1000, Opportunistic, Factor{D: 1, V: 1}, func(error) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(5000)
	if !done {
		t.Fatal("write incomplete")
	}
	r.fs.dn[4].throttled = false
	r.fs.dn[5].throttled = false
	if err := r.fs.Commit("out"); err != nil {
		t.Fatal(err)
	}
	if r.fs.File("out").Class != Reliable {
		t.Fatal("commit did not reclassify")
	}
	r.s.RunUntil(10000)
	if !r.fs.FileFullyReplicated("out") {
		d, v := r.fs.countLive(r.fs.File("out").Blocks[0])
		t.Fatalf("committed file not topped up: {%d,%d}", d, v)
	}
	if err := r.fs.Commit("missing"); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("commit of missing file: %v", err)
	}
}

func TestWriteRetriesOnTargetOutage(t *testing.T) {
	// The relay target dies mid-transfer; the write must retry elsewhere
	// and still succeed.
	r := newRig(t, ModeMOON, map[int][]trace.Interval{
		1: {{Start: 1, End: 9e5}},
	})
	// Factor V:4 forces every volatile node to be a target, including the
	// dead-but-believed-live node 1, whose stage must stall and retry.
	var errGot error
	done := false
	_, err := r.fs.Write(r.c.Node(0), "f", 1000, Opportunistic, Factor{V: 4}, func(e error) {
		errGot, done = e, true
	})
	if err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(10000)
	if !done || errGot != nil {
		t.Fatalf("done=%v err=%v", done, errGot)
	}
	b := r.fs.File("f").Blocks[0]
	_, v := r.fs.countLive(b)
	if v < 3 {
		t.Fatalf("volatile replicas = %d, want 3 (all live volatile nodes)", v)
	}
	if containsInt(b.replicas, 1) {
		t.Fatal("replica registered on dead node")
	}
	if r.fs.Metrics.WriteRetries == 0 {
		t.Fatal("no retry recorded")
	}
}

func TestWriteCancel(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	var errGot error
	op, err := r.fs.Write(r.c.Node(0), "f", 1000, Opportunistic, Factor{V: 2}, func(e error) { errGot = e })
	if err != nil {
		t.Fatal(err)
	}
	r.s.Schedule(1, "cancel", func() { op.Cancel() })
	r.s.RunUntil(100)
	if !errors.Is(errGot, netmodel.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", errGot)
	}
	op.Cancel() // idempotent
}

func TestDelete(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{D: 1, V: 1}); err != nil {
		t.Fatal(err)
	}
	r.fs.Delete("f")
	if r.fs.Exists("f") {
		t.Fatal("file still exists after delete")
	}
	r.fs.Delete("f") // idempotent
	if r.fs.HasLiveReplica(BlockID{File: "f", Index: 0}) {
		t.Fatal("deleted block reports live replica")
	}
}

func TestBlockLocations(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	if _, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{D: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	locs := r.fs.BlockLocations(BlockID{File: "f", Index: 0})
	if len(locs) != 3 {
		t.Fatalf("locations = %v, want 3 nodes", locs)
	}
	if r.fs.BlockLocations(BlockID{File: "x"}) != nil {
		t.Fatal("locations for unknown block")
	}
}

func TestReadFile(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	if _, err := r.fs.CreateStaged("f", 2500, Reliable, Factor{D: 1, V: 1}); err != nil {
		t.Fatal(err)
	}
	done := false
	var errGot error
	if err := r.fs.ReadFile(r.c.Node(3), "f", func(e error) { done, errGot = true, e }); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(10000)
	if !done || errGot != nil {
		t.Fatalf("ReadFile done=%v err=%v", done, errGot)
	}
	if err := r.fs.ReadFile(r.c.Node(3), "missing", func(error) {}); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("ReadFile(missing) err = %v", err)
	}
}

func TestTrimExcessReplicas(t *testing.T) {
	r := newRig(t, ModeHadoop, nil)
	f, err := r.fs.CreateStaged("f", 1000, Opportunistic, Factor{V: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	// Over-replicate by hand.
	for id := 0; id < 4; id++ {
		r.fs.registerReplica(b, id)
	}
	r.s.RunUntil(30)
	if got := len(r.fs.liveReplicas(b)); got != 2 {
		t.Fatalf("live replicas after trim = %d, want 2", got)
	}
	if r.fs.Metrics.TrimmedReplicas == 0 {
		t.Fatal("trim not counted")
	}
}

func TestFactorValidate(t *testing.T) {
	if (Factor{D: 1, V: 1}).Validate() != nil {
		t.Fatal("valid factor rejected")
	}
	for _, f := range []Factor{{}, {D: -1, V: 2}, {D: 1, V: -1}} {
		if f.Validate() == nil {
			t.Fatalf("factor %v accepted", f)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig(ModeMOON)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.NodeHibernateInterval = cfg.NodeExpiryInterval + 1
	if bad.Validate() == nil {
		t.Fatal("hibernate >= expiry accepted")
	}
	bad = cfg
	bad.AvailabilityTarget = 1.5
	if bad.Validate() == nil {
		t.Fatal("availability target 1.5 accepted")
	}
}

func TestStringers(t *testing.T) {
	if Reliable.String() != "reliable" || Opportunistic.String() != "opportunistic" {
		t.Fatal("FileClass strings")
	}
	if ModeMOON.String() != "moon" || ModeHadoop.String() != "hadoop" {
		t.Fatal("Mode strings")
	}
	if DNLive.String() != "live" || DNHibernate.String() != "hibernate" || DNDead.String() != "dead" {
		t.Fatal("DNState strings")
	}
	if (Factor{D: 1, V: 3}).String() != "{1,3}" {
		t.Fatal("Factor string")
	}
	if (BlockID{File: "f", Index: 2}).String() != "f[2]" {
		t.Fatal("BlockID string")
	}
}
