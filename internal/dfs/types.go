// Package dfs implements the block-based distributed file system of the
// MOON reproduction: a Hadoop-0.17-style NameNode/DataNode design extended
// with the paper's multi-dimensional replication service.
//
// MOON's extensions over stock HDFS, all implemented here and selectable
// per Config:
//
//   - replication factors are pairs {d,v} — d copies on dedicated
//     DataNodes, v on volatile ones — instead of a single number;
//   - files are classed *reliable* (never lost; always keep dedicated
//     copies) or *opportunistic* (transient; dedicated copies best-effort);
//   - writes of opportunistic data to dedicated nodes are declined when the
//     dedicated tier is saturated, detected by the sliding-window
//     throttling of Algorithm 1, and the volatile degree is then adapted to
//     v' with 1-p^v' above the availability goal, where p is the measured
//     node-unavailability rate;
//   - reads from volatile clients prefer volatile replicas so the small
//     dedicated tier is not crushed by read traffic;
//   - a *hibernate* DataNode state (reached after NodeHibernateInterval
//     without heartbeats, well before NodeExpiryInterval) suppresses both
//     I/O to the node and re-replication of blocks that still have a
//     dedicated copy, eliminating the replication thrashing that transient
//     outages cause in stock HDFS.
package dfs

import (
	"errors"
	"fmt"
)

// FileClass distinguishes MOON's two file categories.
type FileClass int

const (
	// Opportunistic files hold transient data (intermediate results, and
	// output data before job commit); they tolerate temporary
	// unavailability and may lack dedicated copies.
	Opportunistic FileClass = iota
	// Reliable files must never be lost; at least one dedicated copy is
	// maintained at all times (input and job system data).
	Reliable
)

func (c FileClass) String() string {
	if c == Reliable {
		return "reliable"
	}
	return "opportunistic"
}

// Factor is MOON's two-dimensional replication factor {d,v}.
type Factor struct {
	D int // copies on dedicated DataNodes
	V int // copies on volatile DataNodes
}

func (f Factor) String() string { return fmt.Sprintf("{%d,%d}", f.D, f.V) }

// Validate rejects factors that can never be satisfied.
func (f Factor) Validate() error {
	if f.D < 0 || f.V < 0 || f.D+f.V == 0 {
		return fmt.Errorf("dfs: invalid replication factor %v", f)
	}
	return nil
}

// BlockID names one block of one file.
type BlockID struct {
	File  string
	Index int
}

func (id BlockID) String() string { return fmt.Sprintf("%s[%d]", id.File, id.Index) }

// Block is the NameNode's record of one block.
type Block struct {
	ID   BlockID
	Size float64 // bytes

	// replicas are the DataNode IDs the NameNode currently counts as
	// holding the block (registered replicas). Order is creation order.
	replicas []int
	// onDisk tracks physical presence per node, which outlives NameNode
	// registration: a node declared dead keeps its data and re-reports it
	// on return.
	onDisk map[int]bool

	file *File
}

// File is the NameNode's record of one file.
type File struct {
	Name   string
	Class  FileClass
	Factor Factor
	Blocks []*Block

	// committed marks an output file converted opportunistic→reliable.
	committed bool
	// underConstruction suppresses the replication monitor while a
	// WriteOp is still placing replicas (as for HDFS files being
	// written).
	underConstruction bool
}

// Size returns the file's total bytes.
func (f *File) Size() float64 {
	s := 0.0
	for _, b := range f.Blocks {
		s += b.Size
	}
	return s
}

// Errors surfaced to DFS clients.
var (
	// ErrNoReplica means no live replica of the requested block exists
	// right now (the Reduce "fetch failure" condition).
	ErrNoReplica = errors.New("dfs: no live replica available")
	// ErrWriteFailed means a write ran out of placement retries.
	ErrWriteFailed = errors.New("dfs: write failed after retries")
	// ErrUnknownFile is returned for operations on nonexistent files.
	ErrUnknownFile = errors.New("dfs: unknown file")
	// ErrExists is returned when creating a file that already exists.
	ErrExists = errors.New("dfs: file exists")
)

// DNState is the NameNode's view of a DataNode.
type DNState int

const (
	// DNLive: heartbeats current; replicas served and counted.
	DNLive DNState = iota
	// DNHibernate (MOON only): no heartbeats for NodeHibernateInterval;
	// the node receives no I/O, but its replicas still count for blocks
	// that have a dedicated copy.
	DNHibernate
	// DNDead: no heartbeats for NodeExpiryInterval; replicas
	// deregistered and re-replicated.
	DNDead
)

func (s DNState) String() string {
	switch s {
	case DNLive:
		return "live"
	case DNHibernate:
		return "hibernate"
	case DNDead:
		return "dead"
	default:
		return fmt.Sprintf("DNState(%d)", int(s))
	}
}
