package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer serializes writes so the test can read stdout while the
// daemon goroutine is still running.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonServesAndDrains boots the daemon on a free port, runs one job
// through submit → poll → report, then cancels the run context (the
// signal path) and checks the graceful drain: in-flight work finished and
// the process exited cleanly.
func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "30s"}, &stdout, &stderr)
	}()

	// Discover the bound address from the startup line.
	var base string
	for deadline := time.Now().Add(10 * time.Second); base == ""; {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s%s", stdout.String(), stderr.String())
		}
		if out := stdout.String(); strings.Contains(out, "listening on ") {
			line := out[strings.Index(out, "listening on ")+len("listening on "):]
			base = strings.TrimSpace(strings.Split(line, "\n")[0])
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"name": "smoke", "splits": 3, "words_per_split": 50}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("bad submit body %q: %v", raw, err)
	}

	// Trigger the signal path while the job may still be in flight.
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "stopped") {
		t.Errorf("missing graceful-drain lines in stdout:\n%s", out)
	}
	if s := stderr.String(); strings.Contains(s, "drain incomplete") {
		t.Errorf("drain did not finish in-flight work:\n%s", s)
	}
}
