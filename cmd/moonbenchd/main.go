// Command moonbenchd serves the live engine as a long-running
// multi-tenant HTTP/JSON service: submissions, status polls, reports,
// and a streaming event feed over one persistent master.
//
//	moonbenchd -addr :8080 -volatile 8 -dedicated 2 -policy fair
//
// SIGTERM or SIGINT drains gracefully: new submissions get 503 while
// in-flight work runs to completion (bounded by -drain-timeout), then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/sched"
	"repro/internal/service"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "moonbenchd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: it serves until ctx ends or a signal
// arrives, then drains and shuts the listener down.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("moonbenchd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	volatile := fs.Int("volatile", 4, "volatile (volunteer) workers in the persistent cluster")
	dedicated := fs.Int("dedicated", 1, "dedicated workers in the persistent cluster")
	policy := fs.String("policy", "", "job arbitration policy: fifo (default), fair, weighted, priority")
	maxConcurrent := fs.Int("max-concurrent", 4, "per-tenant concurrent submissions (<= 0 unlimited)")
	maxQueued := fs.Int("max-queued", 16, "per-tenant queued submissions beyond the concurrent cap (<= 0 rejects instead of queueing)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long a signal-triggered drain may wait for in-flight work")
	eventBuffer := fs.Int("event-buffer", 4096, "buffered updates per event stream before frames drop")
	bucket := fs.Float64("metrics-bucket", 1, "metrics series bucket width in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	srv, err := service.New(service.Config{
		VolatileWorkers:  *volatile,
		DedicatedWorkers: *dedicated,
		JobPolicy:        *policy,
		Quota:            sched.QuotaConfig{MaxConcurrent: *maxConcurrent, MaxQueued: *maxQueued},
		MetricsBucket:    *bucket,
		EventBuffer:      *eventBuffer,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Report the bound address (stdout, flushed line) so scripts using
	// :0 can discover the port.
	fmt.Fprintf(stdout, "moonbenchd listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(ctx, syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Fprintf(stdout, "moonbenchd draining (timeout %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "moonbenchd: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // always http.ErrServerClosed after Shutdown
	fmt.Fprintln(stdout, "moonbenchd stopped")
	return nil
}
