// Command moonsim runs a single MapReduce job on the simulated
// opportunistic cluster and prints its execution profile.
//
// Usage:
//
//	moonsim -app sort -policy moon-hybrid -rate 0.5 -dedicated 6
//	moonsim -app wordcount -policy hadoop -expiry 60 -rate 0.3 -all-volatile
//	moonsim -scenario scenarios/correlated-sort.json -variant MOON-Hybrid -rate 0.5
//	moonsim -list-scenarios
//
// With -scenario, moonsim runs one cell of a compiled scenario: the
// variant selected by -variant (default: the first single-job line) at
// the -rate/-seed cell, scaled by -scale — the drill-down view of a line
// moonbench sweeps in aggregate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() {
	var (
		app        = flag.String("app", "sort", "sort|wordcount|sleep-sort|sleep-wordcount")
		policy     = flag.String("policy", "moon-hybrid", "hadoop|moon|moon-hybrid")
		expiry     = flag.Float64("expiry", 600, "Hadoop TrackerExpiryInterval (seconds)")
		rate       = flag.Float64("rate", 0.3, "machine-unavailability rate")
		volatiles  = flag.Int("volatile", 60, "volatile node count")
		dedicated  = flag.Int("dedicated", 6, "dedicated node count")
		allVol     = flag.Bool("all-volatile", false, "treat every machine as volatile (Hadoop baseline)")
		seed       = flag.Uint64("seed", 1, "churn seed")
		interD     = flag.Int("inter-d", 1, "intermediate dedicated replicas")
		interV     = flag.Int("inter-v", 1, "intermediate volatile replicas")
		scale      = flag.Int("scale", 1, "divide workload size by this factor")
		scenFlag   = flag.String("scenario", "", "run one cell of a scenario spec (path to a .json file, or a built-in name)")
		variant    = flag.String("variant", "", "with -scenario: the variant label to run (default: the first single-job line)")
		listScen   = flag.Bool("list-scenarios", false, "print the built-in named scenarios and exit")
		metricsOut = flag.String("metrics", "", "write this run's cross-layer metrics snapshot to this JSON file")
		metricsBkt = flag.Float64("metrics-bucket", metrics.DefaultBucket, "metrics series bucket width, seconds")
	)
	flag.Parse()

	if *listScen {
		must(scenario.List(os.Stdout))
		return
	}

	var (
		opts  core.Options
		w     workload.Spec
		label = *policy
		spec  *scenario.Spec
	)
	if *scenFlag != "" {
		// The spec owns the stack and workload shape: reject the legacy
		// shaping flags instead of silently ignoring them.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "app", "policy", "expiry", "volatile", "dedicated", "all-volatile", "inter-d", "inter-v":
				fatal(fmt.Errorf("-%s shapes the run and cannot be combined with -scenario (pick a cell with -variant/-rate/-seed/-scale)", f.Name))
			}
		})
		var err error
		spec, err = scenario.Load(*scenFlag)
		if err != nil {
			fatal(err)
		}
		v, err := pickVariant(spec, *variant)
		if err != nil {
			fatal(err)
		}
		label = v.Label
		opts, w = v.Build(core.ClusterSpec{UnavailabilityRate: *rate, Seed: *seed})
	} else {
		cs := core.ClusterSpec{
			VolatileNodes:      *volatiles,
			DedicatedNodes:     *dedicated,
			UnavailabilityRate: *rate,
			TreatAllVolatile:   *allVol,
			Seed:               *seed,
		}
		switch *policy {
		case "hadoop":
			opts = core.HadoopPreset(cs, *expiry)
		case "moon":
			opts = core.MOONPreset(cs, false)
		case "moon-hybrid":
			opts = core.MOONPreset(cs, true)
		default:
			fatal(fmt.Errorf("unknown policy %q", *policy))
		}

		slots := (*volatiles + *dedicated) * 2
		switch *app {
		case "sort":
			w = workload.Sort(slots)
		case "wordcount":
			w = workload.WordCount()
		case "sleep-sort":
			w = workload.SleepApp(workload.Sort(slots))
		case "sleep-wordcount":
			w = workload.SleepApp(workload.WordCount())
		default:
			fatal(fmt.Errorf("unknown app %q", *app))
		}
		w.Job.IntermediateFactor = dfs.Factor{D: *interD, V: *interV}
	}
	w = workload.Scale(w, *scale)

	var col *metrics.Collector
	if *metricsOut != "" {
		col = metrics.New(*metricsBkt)
		opts.Metrics = col
	}
	s, err := core.NewForWorkload(opts, w)
	if err != nil {
		fatal(err)
	}
	res, err := s.RunWorkload(w)
	if err != nil {
		fatal(err)
	}
	if col != nil {
		report := metrics.NewExport("moonsim")
		if spec != nil {
			report.Scenario = spec.Name
			report.SpecHash = spec.Hash()
		}
		report.Add(fmt.Sprintf("moonsim %s", w.Job.Name), label, *rate, 1, col.Snapshot())
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	p := res.Profile
	fmt.Printf("job            %s (policy %s, rate %.2f, %dV+%dD, seed %d)\n",
		p.Job, label, *rate, opts.Cluster.VolatileNodes, opts.Cluster.DedicatedNodes, *seed)
	fmt.Printf("state          %v%s\n", p.State, capped(res.HitHorizon))
	fmt.Printf("makespan       %.0f s\n", p.Makespan)
	fmt.Printf("avg map        %.1f s\n", p.AvgMapTime)
	fmt.Printf("avg shuffle    %.1f s\n", p.AvgShuffleTime)
	fmt.Printf("avg reduce     %.1f s\n", p.AvgReduceTime)
	fmt.Printf("killed maps    %d\n", p.KilledMaps)
	fmt.Printf("killed reduces %d\n", p.KilledReduces)
	fmt.Printf("duplicated     %d\n", p.DuplicatedTasks)
	fmt.Printf("invalidations  %d\n", p.MapInvalidations)
	fmt.Printf("dfs            declines=%d adaptiveRaises=%d hibernations=%d expirations=%d\n",
		res.DFS.DedicatedDeclines, res.DFS.AdaptiveRaises, res.DFS.Hibernations, res.DFS.Expirations)
	fmt.Printf("replication    %d transfers, %.2f GB (thrash %d), trimmed %d\n",
		res.DFS.ReplicationsIssued, res.DFS.ReplicationBytes/1e9, res.DFS.ThrashReplications, res.DFS.TrimmedReplicas)
	fmt.Printf("read stalls    %d, fetch failures %d\n", res.DFS.ReadStalls, res.DFS.FetchFailures)
}

// pickVariant compiles the scenario and selects one single-job variant by
// label (or the first one). Multi-job lines need the sweep harness: point
// the user at moonbench.
func pickVariant(spec *scenario.Spec, label string) (harness.Variant, error) {
	if spec.Execution == "live" {
		return harness.Variant{}, fmt.Errorf(
			"scenario %q runs the live engine; run it with moonbench -scenario", spec.Name)
	}
	plan, err := scenario.Compile(spec)
	if err != nil {
		return harness.Variant{}, err
	}
	var labels []string
	for _, run := range plan.Runs {
		for _, v := range run.Variants {
			if label == "" || v.Label == label {
				return v, nil
			}
			labels = append(labels, v.Label)
		}
		for _, mv := range run.Multi {
			if mv.Label == label {
				return harness.Variant{}, fmt.Errorf(
					"variant %q of scenario %q is a multi-job line; run it with moonbench -scenario", label, spec.Name)
			}
		}
	}
	if label == "" {
		return harness.Variant{}, fmt.Errorf(
			"scenario %q has no single-job variants; run it with moonbench -scenario", spec.Name)
	}
	return harness.Variant{}, fmt.Errorf("scenario %q has no variant %q (have: %s)",
		spec.Name, label, strings.Join(labels, ", "))
}

func capped(hit bool) string {
	if hit {
		return " (hit simulation horizon)"
	}
	return ""
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moonsim:", err)
	os.Exit(1)
}
