// Command moonsim runs a single MapReduce job on the simulated
// opportunistic cluster and prints its execution profile.
//
// Usage:
//
//	moonsim -app sort -policy moon-hybrid -rate 0.5 -dedicated 6
//	moonsim -app wordcount -policy hadoop -expiry 60 -rate 0.3 -all-volatile
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "sort", "sort|wordcount|sleep-sort|sleep-wordcount")
		policy    = flag.String("policy", "moon-hybrid", "hadoop|moon|moon-hybrid")
		expiry    = flag.Float64("expiry", 600, "Hadoop TrackerExpiryInterval (seconds)")
		rate      = flag.Float64("rate", 0.3, "machine-unavailability rate")
		volatiles = flag.Int("volatile", 60, "volatile node count")
		dedicated = flag.Int("dedicated", 6, "dedicated node count")
		allVol    = flag.Bool("all-volatile", false, "treat every machine as volatile (Hadoop baseline)")
		seed      = flag.Uint64("seed", 1, "churn seed")
		interD     = flag.Int("inter-d", 1, "intermediate dedicated replicas")
		interV     = flag.Int("inter-v", 1, "intermediate volatile replicas")
		scale      = flag.Int("scale", 1, "divide workload size by this factor")
		metricsOut = flag.String("metrics", "", "write this run's cross-layer metrics snapshot to this JSON file")
		metricsBkt = flag.Float64("metrics-bucket", metrics.DefaultBucket, "metrics series bucket width, seconds")
	)
	flag.Parse()

	cs := core.ClusterSpec{
		VolatileNodes:      *volatiles,
		DedicatedNodes:     *dedicated,
		UnavailabilityRate: *rate,
		TreatAllVolatile:   *allVol,
		Seed:               *seed,
	}
	var opts core.Options
	switch *policy {
	case "hadoop":
		opts = core.HadoopPreset(cs, *expiry)
	case "moon":
		opts = core.MOONPreset(cs, false)
	case "moon-hybrid":
		opts = core.MOONPreset(cs, true)
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	slots := (*volatiles + *dedicated) * 2
	var w workload.Spec
	switch *app {
	case "sort":
		w = workload.Sort(slots)
	case "wordcount":
		w = workload.WordCount()
	case "sleep-sort":
		w = workload.SleepApp(workload.Sort(slots))
	case "sleep-wordcount":
		w = workload.SleepApp(workload.WordCount())
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}
	w = workload.Scale(w, *scale)
	w.Job.IntermediateFactor = dfs.Factor{D: *interD, V: *interV}

	var col *metrics.Collector
	if *metricsOut != "" {
		col = metrics.New(*metricsBkt)
		opts.Metrics = col
	}
	s, err := core.NewForWorkload(opts, w)
	if err != nil {
		fatal(err)
	}
	res, err := s.RunWorkload(w)
	if err != nil {
		fatal(err)
	}
	if col != nil {
		report := metrics.NewExport("moonsim")
		report.Add(fmt.Sprintf("moonsim %s", *app), *policy, *rate, 1, col.Snapshot())
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	p := res.Profile
	fmt.Printf("job            %s (policy %s, rate %.2f, %dV+%dD, seed %d)\n",
		p.Job, *policy, *rate, *volatiles, *dedicated, *seed)
	fmt.Printf("state          %v%s\n", p.State, capped(res.HitHorizon))
	fmt.Printf("makespan       %.0f s\n", p.Makespan)
	fmt.Printf("avg map        %.1f s\n", p.AvgMapTime)
	fmt.Printf("avg shuffle    %.1f s\n", p.AvgShuffleTime)
	fmt.Printf("avg reduce     %.1f s\n", p.AvgReduceTime)
	fmt.Printf("killed maps    %d\n", p.KilledMaps)
	fmt.Printf("killed reduces %d\n", p.KilledReduces)
	fmt.Printf("duplicated     %d\n", p.DuplicatedTasks)
	fmt.Printf("invalidations  %d\n", p.MapInvalidations)
	fmt.Printf("dfs            declines=%d adaptiveRaises=%d hibernations=%d expirations=%d\n",
		res.DFS.DedicatedDeclines, res.DFS.AdaptiveRaises, res.DFS.Hibernations, res.DFS.Expirations)
	fmt.Printf("replication    %d transfers, %.2f GB (thrash %d), trimmed %d\n",
		res.DFS.ReplicationsIssued, res.DFS.ReplicationBytes/1e9, res.DFS.ThrashReplications, res.DFS.TrimmedReplicas)
	fmt.Printf("read stalls    %d, fetch failures %d\n", res.DFS.ReadStalls, res.DFS.FetchFailures)
}

func capped(hit bool) string {
	if hit {
		return " (hit simulation horizon)"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moonsim:", err)
	os.Exit(1)
}
