// Command moonsim runs a single MapReduce job on the simulated
// opportunistic cluster and prints its execution profile.
//
// Usage:
//
//	moonsim -app sort -policy moon-hybrid -rate 0.5 -dedicated 6
//	moonsim -app wordcount -policy hadoop -expiry 60 -rate 0.3 -all-volatile
//	moonsim -scenario scenarios/correlated-sort.json -variant MOON-Hybrid -rate 0.5
//	moonsim -scenario scale-sweep -variant 528-nodes -cpuprofile cpu.out
//	moonsim -list-scenarios
//
// With -scenario, moonsim runs one cell of a compiled scenario: the
// variant selected by -variant (default: the first single-job line) at
// the -rate/-seed cell, scaled by -scale — the drill-down view of a line
// moonbench sweeps in aggregate.
//
// -cpuprofile and -memprofile write pprof profiles of the run; a single
// cell of the scale-sweep scenario is the intended profiling subject for
// simulator speed work (see README "Performance").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "moonsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("moonsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app        = fs.String("app", "sort", "sort|wordcount|sleep-sort|sleep-wordcount")
		policy     = fs.String("policy", "moon-hybrid", "hadoop|moon|moon-hybrid")
		expiry     = fs.Float64("expiry", 600, "Hadoop TrackerExpiryInterval (seconds)")
		rate       = fs.Float64("rate", 0.3, "machine-unavailability rate")
		volatiles  = fs.Int("volatile", 60, "volatile node count")
		dedicated  = fs.Int("dedicated", 6, "dedicated node count")
		allVol     = fs.Bool("all-volatile", false, "treat every machine as volatile (Hadoop baseline)")
		seed       = fs.Uint64("seed", 1, "churn seed")
		interD     = fs.Int("inter-d", 1, "intermediate dedicated replicas")
		interV     = fs.Int("inter-v", 1, "intermediate volatile replicas")
		scale      = fs.Int("scale", 1, "divide workload size by this factor")
		scenFlag   = fs.String("scenario", "", "run one cell of a scenario spec (path to a .json file, or a built-in name)")
		variant    = fs.String("variant", "", "with -scenario: the variant label to run (default: the first single-job line)")
		listScen   = fs.Bool("list-scenarios", false, "print the built-in named scenarios and exit")
		metricsOut = fs.String("metrics", "", "write this run's cross-layer metrics snapshot to this JSON file")
		metricsBkt = fs.Float64("metrics-bucket", metrics.DefaultBucket, "metrics series bucket width, seconds")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile taken after the run to this file")
		shardW     = fs.Int("shard-workers", 0, "intra-run shard workers (0 = all cores, 1 = serial; every value is byte-identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shardSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "shard-workers" {
			shardSet = true
		}
	})

	if *listScen {
		return scenario.List(stdout)
	}

	var (
		opts  core.Options
		w     workload.Spec
		label = *policy
		spec  *scenario.Spec
	)
	if *scenFlag != "" {
		// The spec owns the stack and workload shape: reject the legacy
		// shaping flags instead of silently ignoring them.
		var flagErr error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "app", "policy", "expiry", "volatile", "dedicated", "all-volatile", "inter-d", "inter-v":
				flagErr = fmt.Errorf("-%s shapes the run and cannot be combined with -scenario (pick a cell with -variant/-rate/-seed/-scale)", f.Name)
			}
		})
		if flagErr != nil {
			return flagErr
		}
		var err error
		spec, err = scenario.Load(*scenFlag)
		if err != nil {
			return err
		}
		v, err := pickVariant(spec, *variant)
		if err != nil {
			return err
		}
		label = v.Label
		opts, w = v.Build(core.ClusterSpec{UnavailabilityRate: *rate, Seed: *seed})
		// The spec's sweep-level shard knob applies to this cell too; the
		// flag overrides it when given (a pure speed choice either way).
		opts.ShardWorkers = spec.Sweep.ShardWorkers
	} else {
		cs := core.ClusterSpec{
			VolatileNodes:      *volatiles,
			DedicatedNodes:     *dedicated,
			UnavailabilityRate: *rate,
			TreatAllVolatile:   *allVol,
			Seed:               *seed,
		}
		switch *policy {
		case "hadoop":
			opts = core.HadoopPreset(cs, *expiry)
		case "moon":
			opts = core.MOONPreset(cs, false)
		case "moon-hybrid":
			opts = core.MOONPreset(cs, true)
		default:
			return fmt.Errorf("unknown policy %q", *policy)
		}

		slots := (*volatiles + *dedicated) * 2
		switch *app {
		case "sort":
			w = workload.Sort(slots)
		case "wordcount":
			w = workload.WordCount()
		case "sleep-sort":
			w = workload.SleepApp(workload.Sort(slots))
		case "sleep-wordcount":
			w = workload.SleepApp(workload.WordCount())
		default:
			return fmt.Errorf("unknown app %q", *app)
		}
		w.Job.IntermediateFactor = dfs.Factor{D: *interD, V: *interV}
	}
	w = workload.Scale(w, *scale)
	if *scenFlag == "" || shardSet {
		opts.ShardWorkers = *shardW
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var col *metrics.Collector
	if *metricsOut != "" {
		col = metrics.New(*metricsBkt)
		opts.Metrics = col
	}
	s, err := core.NewForWorkload(opts, w)
	if err != nil {
		return err
	}
	res, err := s.RunWorkload(w)
	if err != nil {
		return err
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		runtime.GC() // settle retained heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if col != nil {
		report := metrics.NewExport("moonsim")
		if spec != nil {
			report.Scenario = spec.Name
			report.SpecHash = spec.Hash()
		}
		report.Add(fmt.Sprintf("moonsim %s", w.Job.Name), label, *rate, 1, col.Snapshot())
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	p := res.Profile
	fmt.Fprintf(stdout, "job            %s (policy %s, rate %.2f, %dV+%dD, seed %d)\n",
		p.Job, label, *rate, opts.Cluster.VolatileNodes, opts.Cluster.DedicatedNodes, *seed)
	fmt.Fprintf(stdout, "state          %v%s\n", p.State, capped(res.HitHorizon))
	fmt.Fprintf(stdout, "makespan       %.0f s\n", p.Makespan)
	fmt.Fprintf(stdout, "avg map        %.1f s\n", p.AvgMapTime)
	fmt.Fprintf(stdout, "avg shuffle    %.1f s\n", p.AvgShuffleTime)
	fmt.Fprintf(stdout, "avg reduce     %.1f s\n", p.AvgReduceTime)
	fmt.Fprintf(stdout, "killed maps    %d\n", p.KilledMaps)
	fmt.Fprintf(stdout, "killed reduces %d\n", p.KilledReduces)
	fmt.Fprintf(stdout, "duplicated     %d\n", p.DuplicatedTasks)
	fmt.Fprintf(stdout, "invalidations  %d\n", p.MapInvalidations)
	fmt.Fprintf(stdout, "dfs            declines=%d adaptiveRaises=%d hibernations=%d expirations=%d\n",
		res.DFS.DedicatedDeclines, res.DFS.AdaptiveRaises, res.DFS.Hibernations, res.DFS.Expirations)
	fmt.Fprintf(stdout, "replication    %d transfers, %.2f GB (thrash %d), trimmed %d\n",
		res.DFS.ReplicationsIssued, res.DFS.ReplicationBytes/1e9, res.DFS.ThrashReplications, res.DFS.TrimmedReplicas)
	fmt.Fprintf(stdout, "read stalls    %d, fetch failures %d\n", res.DFS.ReadStalls, res.DFS.FetchFailures)
	return nil
}

// pickVariant compiles the scenario and selects one single-job variant by
// label (or the first one). Multi-job lines need the sweep harness: point
// the user at moonbench.
func pickVariant(spec *scenario.Spec, label string) (harness.Variant, error) {
	if spec.Execution == "live" {
		return harness.Variant{}, fmt.Errorf(
			"scenario %q runs the live engine; run it with moonbench -scenario", spec.Name)
	}
	plan, err := scenario.Compile(spec)
	if err != nil {
		return harness.Variant{}, err
	}
	var labels []string
	for _, run := range plan.Runs {
		for _, v := range run.Variants {
			if label == "" || v.Label == label {
				return v, nil
			}
			labels = append(labels, v.Label)
		}
		for _, mv := range run.Multi {
			if mv.Label == label {
				return harness.Variant{}, fmt.Errorf(
					"variant %q of scenario %q is a multi-job line; run it with moonbench -scenario", label, spec.Name)
			}
		}
	}
	if label == "" {
		return harness.Variant{}, fmt.Errorf(
			"scenario %q has no single-job variants; run it with moonbench -scenario", spec.Name)
	}
	return harness.Variant{}, fmt.Errorf("scenario %q has no variant %q (have: %s)",
		spec.Name, label, strings.Join(labels, ", "))
}

func capped(hit bool) string {
	if hit {
		return " (hit simulation horizon)"
	}
	return ""
}
