package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunProfileFlags drives a real (scaled-down) run with both pprof
// flags and checks the profiles land on disk.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var out, errb bytes.Buffer
	err := run([]string{
		"-app", "sleep-wordcount", "-scale", "8",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "makespan") {
		t.Errorf("missing profile output, got:\n%s", out.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestRunFlagErrors pins the rejection surface: bad values, shaping flags
// combined with -scenario, and live specs (which moonsim cannot run, with
// or without profiling).
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown policy", []string{"-policy", "nope"}, `unknown policy "nope"`},
		{"unknown app", []string{"-app", "nope"}, `unknown app "nope"`},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"scenario+app", []string{"-scenario", "scale-sweep", "-app", "sort"},
			"-app shapes the run and cannot be combined with -scenario"},
		{"scenario+policy", []string{"-scenario", "scale-sweep", "-policy", "moon"},
			"-policy shapes the run and cannot be combined with -scenario"},
		{"unknown scenario", []string{"-scenario", "no-such-spec"},
			`unknown scenario "no-such-spec"`},
		{"unknown variant", []string{"-scenario", "scale-sweep", "-variant", "nope"},
			`has no variant "nope"`},
		{"live scenario", []string{"-scenario", "live-mix"},
			"runs the live engine; run it with moonbench -scenario"},
		{"live scenario with profiling", []string{"-scenario", "live-mix", "-cpuprofile", "x.out"},
			"runs the live engine; run it with moonbench -scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			err := run(tc.args, &out, &errb)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err.Error(), tc.want)
			}
		})
	}
}

// TestRunScenarioCell runs one cell of the shipped scale-sweep scenario end
// to end — the profiling subject documented in README "Performance".
func TestRunScenarioCell(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{
		"-scenario", "scale-sweep", "-variant", "66-nodes", "-scale", "16",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "policy 66-nodes") {
		t.Errorf("expected variant label in output, got:\n%s", got)
	}
	if !strings.Contains(got, "60V+6D") {
		t.Errorf("expected 60V+6D fleet in output, got:\n%s", got)
	}
}

// TestListScenarios checks -list-scenarios includes the scale-sweep entry.
func TestListScenarios(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "scale-sweep") {
		t.Errorf("-list-scenarios output missing scale-sweep:\n%s", out.String())
	}
}
