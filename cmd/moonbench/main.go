// Command moonbench regenerates the tables and figures of the MOON paper
// (HPDC 2010) on the simulated testbed.
//
// Usage:
//
//	moonbench -experiment fig4 -app sort
//	moonbench -experiment all -scale 4 -seeds 1,2,3
//	moonbench -experiment multi -policy fair -jobs 4 -stagger 300
//	moonbench -experiment multi -arrivals poisson -lambda 30 -policy both
//	moonbench -experiment fig4 -app sort -metrics out.json
//
// Experiments: fig1, fig4, fig5, fig6, table2, fig7, multi, all (plus the
// standalone ablation and correlated studies). -metrics writes a
// schema-versioned cross-layer run report (JSON plus a .timeline.csv dump)
// collected from every sweep the invocation runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/mapred"
	"repro/internal/metrics"
)

// experiments are the valid -experiment values; unknown values are an
// error, not a silent fall-through to the default.
var experiments = []string{
	"fig1", "fig4", "fig5", "fig6", "table2", "fig7", "multi", "ablation", "correlated", "all",
}

func main() {
	var (
		experiment = flag.String("experiment", "all", strings.Join(experiments, "|"))
		app        = flag.String("app", "both", "sort|wordcount|both")
		seeds      = flag.String("seeds", "1", "comma-separated churn seeds to average over")
		scale      = flag.Int("scale", 1, "divide workload size by this factor (1 = paper scale)")
		rates      = flag.String("rates", "0.1,0.3,0.5", "comma-separated unavailability rates")
		ablation   = flag.String("ablation", "homestretch", "homestretch|speccap|hibernate|adaptive")
		parallel   = flag.Int("parallel", 0, "simulations to run concurrently (0 = all cores, 1 = serial)")
		policy     = flag.String("policy", "both", "multi-job slot arbitration: fifo|fair|weighted|both")
		jobs       = flag.Int("jobs", 3, "multi-job experiment: jobs per run")
		stagger    = flag.Float64("stagger", 60, "multi-job staggered arrivals: seconds between submissions")
		arrivals   = flag.String("arrivals", "staggered", "multi-job arrival process: staggered|poisson")
		lambda     = flag.Float64("lambda", 30, "poisson arrivals: mean arrival rate, jobs per hour")
		arrSeed    = flag.Uint64("arrival-seed", 1, "poisson arrivals: offset draw seed")
		metricsOut = flag.String("metrics", "", "write a cross-layer metrics report to this JSON file (plus a .timeline.csv next to it)")
		metricsBkt = flag.Float64("metrics-bucket", metrics.DefaultBucket, "metrics series bucket width, seconds")
		verbose    = flag.Bool("v", false, "print one line per run")
	)
	flag.Parse()

	if !slices.Contains(experiments, *experiment) {
		fatal(fmt.Errorf("unknown experiment %q (want %s)", *experiment, strings.Join(experiments, "|")))
	}

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Parallelism = *parallel
	var err error
	if cfg.Seeds, err = parseSeeds(*seeds); err != nil {
		fatal(err)
	}
	if cfg.Rates, err = parseRates(*rates); err != nil {
		fatal(err)
	}
	if *verbose {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	var report *metrics.Export
	if *metricsOut != "" {
		cfg.MetricsBucket = *metricsBkt
		if cfg.MetricsBucket <= 0 {
			// Clamp like metrics.New so a zero bucket can't silently
			// disable collection while still writing an empty report.
			cfg.MetricsBucket = metrics.DefaultBucket
		}
		report = metrics.NewExport("moonbench")
	}
	collect := func(sw interface {
		AppendMetrics(*metrics.Export, int)
	}) {
		if report != nil {
			sw.AppendMetrics(report, len(cfg.Seeds))
		}
	}

	// Validate the policy flag up front: a typo must fail loudly even when
	// the multi experiment is not selected this run.
	var policies []mapred.SchedPolicy
	if *policy != "both" {
		pol, err := mapred.JobPolicyByName(*policy)
		if err != nil {
			fatal(err)
		}
		policies = append(policies, pol)
	}
	arr := harness.ArrivalSpec{Process: *arrivals, Interval: *stagger, Seed: *arrSeed}
	switch *arrivals {
	case "staggered":
	case "poisson":
		if *lambda <= 0 {
			fatal(fmt.Errorf("poisson arrivals need -lambda > 0 (got %v)", *lambda))
		}
		arr.Interval = 3600 / *lambda
	default:
		fatal(fmt.Errorf("unknown arrival process %q (want staggered or poisson)", *arrivals))
	}

	apps := []string{"sort", "wordcount"}
	switch *app {
	case "both":
	case "sort", "wordcount":
		apps = []string{*app}
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	run := func(name string) bool { return *experiment == name || *experiment == "all" }

	if run("fig1") {
		if err := harness.Fig1(os.Stdout, cfg.Seeds[0]); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	for _, a := range apps {
		if run("fig4") || run("fig5") {
			sw, err := cfg.Fig4(a)
			if err != nil {
				fatal(err)
			}
			collect(sw)
			if run("fig4") {
				must(sw.RenderTimes(os.Stdout))
				fmt.Println()
			}
			if run("fig5") {
				must(sw.RenderDuplicates(os.Stdout))
				fmt.Println()
			}
		}
		if run("fig6") || run("table2") {
			sw, err := cfg.Fig6(a)
			if err != nil {
				fatal(err)
			}
			collect(sw)
			if run("fig6") {
				must(sw.RenderTimes(os.Stdout))
				fmt.Println()
			}
			if run("table2") {
				must(harness.RenderTable2(os.Stdout, a, sw))
				fmt.Println()
			}
		}
		if run("fig7") {
			sw, err := cfg.Fig7(a)
			if err != nil {
				fatal(err)
			}
			collect(sw)
			must(sw.RenderTimes(os.Stdout))
			fmt.Println()
		}
		if run("multi") {
			title := fmt.Sprintf("Multi-job (%s): %d jobs, %s arrivals every ~%.0fs",
				a, *jobs, arr.Process, arr.Interval)
			sw, err := cfg.RunMultiSweep(title, harness.MultiArrivalVariants(a, *jobs, arr, policies...))
			if err != nil {
				fatal(err)
			}
			collect(sw)
			must(sw.Render(os.Stdout))
			fmt.Println()
		}
		if *experiment == "ablation" {
			sw, err := cfg.RunAblation(*ablation, a)
			if err != nil {
				fatal(err)
			}
			collect(sw)
			must(sw.RenderTimes(os.Stdout))
			if *ablation == "homestretch" || *ablation == "speccap" {
				must(sw.RenderDuplicates(os.Stdout))
			}
			fmt.Println()
		}
		if *experiment == "correlated" {
			sw, err := cfg.RunCorrelated(a)
			if err != nil {
				fatal(err)
			}
			collect(sw)
			must(sw.RenderTimes(os.Stdout))
			fmt.Println()
		}
	}

	if report != nil {
		must(writeReport(report, *metricsOut))
		fmt.Fprintf(os.Stderr, "moonbench: wrote %s and %s\n", *metricsOut, timelinePath(*metricsOut))
	}
}

// timelinePath derives the CSV dump's path from the JSON report path.
func timelinePath(jsonPath string) string {
	return strings.TrimSuffix(jsonPath, ".json") + ".timeline.csv"
}

func writeReport(report *metrics.Export, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	cf, err := os.Create(timelinePath(path))
	if err != nil {
		return err
	}
	if err := report.WriteTimelineCSV(cf); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moonbench:", err)
	os.Exit(1)
}
