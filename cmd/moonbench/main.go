// Command moonbench regenerates the tables and figures of the MOON paper
// (HPDC 2010) on the simulated testbed.
//
// Usage:
//
//	moonbench -experiment fig4 -app sort
//	moonbench -experiment all -scale 4 -seeds 1,2,3
//	moonbench -experiment multi -policy fair -jobs 4 -stagger 300
//
// Experiments: fig1, fig4, fig5, fig6, table2, fig7, multi, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/mapred"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig1|fig4|fig5|fig6|table2|fig7|multi|ablation|all")
		app        = flag.String("app", "both", "sort|wordcount|both")
		seeds      = flag.String("seeds", "1", "comma-separated churn seeds to average over")
		scale      = flag.Int("scale", 1, "divide workload size by this factor (1 = paper scale)")
		rates      = flag.String("rates", "0.1,0.3,0.5", "comma-separated unavailability rates")
		ablation   = flag.String("ablation", "homestretch", "homestretch|speccap|hibernate|adaptive")
		parallel   = flag.Int("parallel", 0, "simulations to run concurrently (0 = all cores, 1 = serial)")
		policy     = flag.String("policy", "both", "multi-job slot arbitration: fifo|fair|both")
		jobs       = flag.Int("jobs", 3, "multi-job experiment: jobs per run")
		stagger    = flag.Float64("stagger", 60, "multi-job experiment: seconds between submissions")
		verbose    = flag.Bool("v", false, "print one line per run")
	)
	flag.Parse()

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Parallelism = *parallel
	var err error
	if cfg.Seeds, err = parseSeeds(*seeds); err != nil {
		fatal(err)
	}
	if cfg.Rates, err = parseRates(*rates); err != nil {
		fatal(err)
	}
	if *verbose {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	apps := []string{"sort", "wordcount"}
	switch *app {
	case "both":
	case "sort", "wordcount":
		apps = []string{*app}
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	run := func(name string) bool { return *experiment == name || *experiment == "all" }

	if run("fig1") {
		if err := harness.Fig1(os.Stdout, cfg.Seeds[0]); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	for _, a := range apps {
		if run("fig4") || run("fig5") {
			sw, err := cfg.Fig4(a)
			if err != nil {
				fatal(err)
			}
			if run("fig4") {
				must(sw.RenderTimes(os.Stdout))
				fmt.Println()
			}
			if run("fig5") {
				must(sw.RenderDuplicates(os.Stdout))
				fmt.Println()
			}
		}
		if run("fig6") || run("table2") {
			sw, err := cfg.Fig6(a)
			if err != nil {
				fatal(err)
			}
			if run("fig6") {
				must(sw.RenderTimes(os.Stdout))
				fmt.Println()
			}
			if run("table2") {
				must(harness.RenderTable2(os.Stdout, a, sw))
				fmt.Println()
			}
		}
		if run("fig7") {
			sw, err := cfg.Fig7(a)
			if err != nil {
				fatal(err)
			}
			must(sw.RenderTimes(os.Stdout))
			fmt.Println()
		}
		if run("multi") {
			var policies []mapred.SchedPolicy
			if *policy != "both" {
				pol, err := mapred.JobPolicyByName(*policy)
				if err != nil {
					fatal(err)
				}
				policies = append(policies, pol)
			}
			title := fmt.Sprintf("Multi-job (%s): %d jobs staggered %.0fs", a, *jobs, *stagger)
			sw, err := cfg.RunMultiSweep(title, harness.MultiVariants(a, *jobs, *stagger, policies...))
			if err != nil {
				fatal(err)
			}
			must(sw.Render(os.Stdout))
			fmt.Println()
		}
		if *experiment == "ablation" {
			sw, err := cfg.RunAblation(*ablation, a)
			if err != nil {
				fatal(err)
			}
			must(sw.RenderTimes(os.Stdout))
			if *ablation == "homestretch" || *ablation == "speccap" {
				must(sw.RenderDuplicates(os.Stdout))
			}
			fmt.Println()
		}
		if *experiment == "correlated" {
			sw, err := cfg.RunCorrelated(a)
			if err != nil {
				fatal(err)
			}
			must(sw.RenderTimes(os.Stdout))
			fmt.Println()
		}
	}
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moonbench:", err)
	os.Exit(1)
}
