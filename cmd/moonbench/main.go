// Command moonbench regenerates the tables and figures of the MOON paper
// (HPDC 2010) on the simulated testbed, and runs arbitrary declarative
// scenarios (moon-scenario/v1 specs).
//
// Usage:
//
//	moonbench -experiment fig4 -app sort
//	moonbench -experiment all -scale 4 -seeds 1,2,3
//	moonbench -experiment multi -policy fair -jobs 4 -stagger 300
//	moonbench -experiment multi -arrivals poisson -lambda 30 -policy both
//	moonbench -experiment live -jobs 3 -policy both
//	moonbench -experiment fig4 -app sort -metrics out.json
//	moonbench -scenario scenarios/poisson-mix.json
//	moonbench -scenario scenarios/live-mix.json -metrics live.json
//	moonbench -scenario correlated-sort -scale 16 -seeds 1
//	moonbench -list             # valid flag values
//	moonbench -list-scenarios   # built-in named scenarios
//
// Every invocation — flag-driven or file-driven — is internally a
// scenario.Spec: flags assemble a spec, -scenario loads one, and both
// compile through the same path, so a flag run is byte-identical to the
// equivalent scenario file. With -scenario, the sweep-axis flags (-seeds,
// -rates, -scale, -parallel, -shard-workers, -metrics-bucket) override
// the spec when set explicitly; the experiment-shaping flags
// (-experiment, -app, -policy, ...) are rejected. -metrics writes a
// schema-versioned cross-layer run report (JSON plus a .timeline.csv
// dump) stamped with the scenario name and spec hash. -cpuprofile and
// -memprofile write pprof profiles of the whole sweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "moonbench:", err)
		os.Exit(1)
	}
}

// run is the whole CLI: flags (or a scenario file) to spec, spec to plan,
// plan to output. Factored from main so tests can pin the flag path and
// the -scenario path byte-identical.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("moonbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all", strings.Join(scenario.Experiments, "|"))
		app        = fs.String("app", "both", "sort|wordcount|both")
		seeds      = fs.String("seeds", "1", "comma-separated churn seeds to average over")
		scale      = fs.Int("scale", 1, "divide workload size by this factor (1 = paper scale)")
		rates      = fs.String("rates", "0.1,0.3,0.5", "comma-separated unavailability rates")
		ablation   = fs.String("ablation", "homestretch", strings.Join(harness.AblationNames, "|"))
		parallel   = fs.Int("parallel", 0, "simulations to run concurrently (0 = all cores, 1 = serial)")
		shardW     = fs.Int("shard-workers", 1, "intra-run shard workers per simulation (0 = all cores, 1 = serial; every value is byte-identical)")
		policy     = fs.String("policy", "both", "multi-job slot arbitration: fifo|fair|weighted|priority|both")
		jobs       = fs.Int("jobs", 3, "multi-job experiment: jobs per run")
		stagger    = fs.Float64("stagger", 60, "multi-job staggered arrivals: seconds between submissions")
		arrivals   = fs.String("arrivals", "staggered", "multi-job arrival process: staggered|poisson")
		lambda     = fs.Float64("lambda", 30, "poisson arrivals: mean arrival rate, jobs per hour")
		arrSeed    = fs.Uint64("arrival-seed", 1, "poisson arrivals: offset draw seed")
		scenFlag   = fs.String("scenario", "", "run a scenario spec (path to a .json file, or a built-in name)")
		dumpScen   = fs.String("dump-scenario", "", "write the run's assembled scenario spec to this file ('-' for stdout) and exit without running")
		listScen   = fs.Bool("list-scenarios", false, "print the built-in named scenarios and exit")
		list       = fs.Bool("list", false, "print the valid experiments, apps, ablations, policies and arrival processes, then exit")
		metricsOut = fs.String("metrics", "", "write a cross-layer metrics report to this JSON file (plus a .timeline.csv next to it)")
		metricsBkt = fs.Float64("metrics-bucket", metrics.DefaultBucket, "metrics series bucket width, seconds")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile taken after the sweep to this file")
		verbose    = fs.Bool("v", false, "print one line per run")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if *list {
		return printLists(stdout)
	}
	if *listScen {
		return scenario.List(stdout)
	}

	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var spec *scenario.Spec
	if *scenFlag != "" {
		for _, name := range []string{
			"experiment", "app", "policy", "jobs", "stagger", "arrivals",
			"lambda", "arrival-seed", "ablation",
		} {
			if explicit[name] {
				return fmt.Errorf("-%s shapes the experiment and cannot be combined with -scenario (edit the spec instead)", name)
			}
		}
		var err error
		if spec, err = scenario.Load(*scenFlag); err != nil {
			return err
		}
		// Sweep-axis flags override the loaded spec when set explicitly,
		// so CI can smoke-run any scenario at a bounded scale.
		if explicit["seeds"] {
			if spec.Sweep.Seeds, err = parseSeeds(*seeds); err != nil {
				return err
			}
		}
		if explicit["rates"] {
			if spec.Sweep.Rates, err = parseRates(*rates); err != nil {
				return err
			}
		}
		if explicit["scale"] {
			spec.Sweep.Scale = *scale
		}
		if explicit["parallel"] {
			spec.Sweep.Parallelism = *parallel
		}
		if explicit["shard-workers"] {
			spec.Sweep.ShardWorkers = *shardW
		}
		if explicit["metrics-bucket"] {
			spec.Metrics.BucketSeconds = *metricsBkt
		}
	} else {
		if *experiment == "live" && explicit["ablation"] {
			// The simulator-only ablation selector must fail loudly
			// rather than be silently dropped, matching the scenario
			// path's validation. (Arrival flags DO apply to live now:
			// explicit ones become compressed wall-clock submission
			// offsets; without them live jobs are submitted together.)
			return fmt.Errorf("-ablation does not apply to -experiment live")
		}
		f := scenario.Flags{
			Experiment: *experiment,
			App:        *app,
			// Live arrivals are opt-in: only explicitly set flags reach
			// the spec (the defaults would otherwise silently stagger
			// every live run).
			ExplicitArrivals: explicit["stagger"] || explicit["arrivals"] ||
				explicit["lambda"] || explicit["arrival-seed"],
			Scale:         *scale,
			Parallel:      *parallel,
			Ablation:      *ablation,
			Policy:        *policy,
			Jobs:          *jobs,
			Stagger:       *stagger,
			Arrivals:      *arrivals,
			Lambda:        *lambda,
			ArrivalSeed:   *arrSeed,
			MetricsBucket: *metricsBkt,
			ShardWorkers:  *shardW,
		}
		var err error
		if f.Seeds, err = parseSeeds(*seeds); err != nil {
			return err
		}
		if f.Rates, err = parseRates(*rates); err != nil {
			return err
		}
		if spec, err = scenario.FromFlags(f); err != nil {
			return err
		}
	}

	if *dumpScen != "" {
		if err := spec.Validate(); err != nil {
			return err
		}
		if *dumpScen == "-" {
			return spec.WriteJSON(stdout)
		}
		f, err := os.Create(*dumpScen)
		if err != nil {
			return err
		}
		if err := spec.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	plan, err := scenario.Compile(spec)
	if err != nil {
		return err
	}
	if *verbose {
		plan.Config.Progress = func(line string) { fmt.Fprintln(stderr, line) }
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var report *metrics.Export
	if *metricsOut != "" {
		report = metrics.NewExport("moonbench")
		report.Scenario = spec.Name
		report.SpecHash = spec.Hash()
	}
	if err := plan.Execute(stdout, report); err != nil {
		return err
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		runtime.GC() // settle retained heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if report != nil {
		if err := writeReport(report, *metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "moonbench: wrote %s and %s\n", *metricsOut, timelinePath(*metricsOut))
	}
	return nil
}

// printLists answers "what can I pass here": every enumerated flag value.
func printLists(w io.Writer) error {
	_, err := fmt.Fprintf(w, `moonbench flag values
  -experiment  %s
  -app         sort|wordcount|both
  -ablation    %s
  -policy      %s|both
  -arrivals    %s
`,
		strings.Join(scenario.Experiments, "|"),
		strings.Join(harness.AblationNames, "|"),
		strings.Join(mapred.JobPolicyNames(), "|"),
		strings.Join(scenario.ArrivalProcesses, "|"))
	return err
}

// timelinePath derives the CSV dump's path from the JSON report path.
func timelinePath(jsonPath string) string {
	return strings.TrimSuffix(jsonPath, ".json") + ".timeline.csv"
}

func writeReport(report *metrics.Export, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	cf, err := os.Create(timelinePath(path))
	if err != nil {
		return err
	}
	if err := report.WriteTimelineCSV(cf); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
