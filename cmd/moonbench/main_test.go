package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// runCLI invokes the full CLI and returns stdout.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("moonbench %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.String()
}

// TestScenarioFileMatchesFlagRun pins the tentpole acceptance criterion:
// a `-scenario <file>` run must be byte-identical to the equivalent flag
// invocation — stdout and the exported metrics report alike — because the
// flag path internally constructs the very spec the file holds.
func TestScenarioFileMatchesFlagRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	dir := t.TempDir()

	cases := []struct {
		name  string
		flags []string
	}{
		{"fig4", []string{"-experiment", "fig4", "-app", "sort", "-scale", "32", "-seeds", "1,2", "-rates", "0.5"}},
		{"multi", []string{"-experiment", "multi", "-app", "sort", "-policy", "fair",
			"-jobs", "2", "-stagger", "30", "-scale", "32", "-seeds", "1", "-rates", "0.5"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flagReport := filepath.Join(dir, tc.name+"-flags.json")
			flagOut := runCLI(t, append(tc.flags, "-metrics", flagReport)...)

			// Export the exact spec the flag run assembled internally,
			// then run it as a file.
			specPath := filepath.Join(dir, tc.name+".scenario.json")
			runCLI(t, append(tc.flags, "-dump-scenario", specPath)...)
			raw, err := os.ReadFile(specPath)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := scenario.Parse(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			fileReport := filepath.Join(dir, tc.name+"-file.json")
			fileOut := runCLI(t, "-scenario", specPath, "-metrics", fileReport)

			if flagOut != fileOut {
				t.Errorf("stdout differs between flag and -scenario runs:\n--- flags ---\n%s\n--- file ---\n%s", flagOut, fileOut)
			}
			a, err := os.ReadFile(flagReport)
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(fileReport)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Error("metrics reports differ between flag and -scenario runs")
			}
			// The report is self-describing: scenario name + spec hash.
			if !bytes.Contains(a, []byte(`"scenario": "`+spec.Name+`"`)) ||
				!bytes.Contains(a, []byte(`"spec_hash": "`+spec.Hash()+`"`)) {
				t.Error("metrics report is missing the scenario provenance stamp")
			}
		})
	}
}

// TestRunProfileFlags drives a real (scaled-down) sweep with both pprof
// flags — and a non-default shard pool — and checks the profiles land on
// disk, mirroring moonsim's profiling surface.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	out := runCLI(t,
		"-experiment", "fig4", "-app", "sort", "-scale", "32",
		"-seeds", "1", "-rates", "0.5", "-shard-workers", "2",
		"-cpuprofile", cpu, "-memprofile", mem,
	)
	if !strings.Contains(out, "Fig 4/5") {
		t.Errorf("missing sweep output, got:\n%s", out)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestLiveScenarioEndToEnd drives the live goroutine engine from a
// moon-scenario/v1 file with "execution": "live": ≥3 concurrently
// submitted jobs per cell complete under trace-compressed churn across
// all three policy lines, and the exported report carries engine-layer
// per-job gauges and task-duration histograms. CI runs this under -race.
func TestLiveScenarioEndToEnd(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "live.json")
	spec := `{
  "schema": "moon-scenario/v1",
  "name": "live-e2e",
  "execution": "live",
  "live": {
    "volatile_workers": 3,
    "dedicated_workers": 1,
    "horizon_seconds": 60,
    "compression_ms": 1,
    "splits_per_job": 5,
    "words_per_split": 150,
    "reduces_per_job": 2
  },
  "sweep": {"seeds": [1], "rates": [0.3]},
  "metrics": {"bucket_seconds": 1},
  "experiments": [
    {
      "app": "wordcount",
      "multi": {
        "jobs": 3,
        "policies": ["fifo", "fair", "priority"],
        "priorities": {"live-j1": 7}
      }
    }
  ]
}
`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	report := filepath.Join(dir, "live.json.report.json")
	out := runCLI(t, "-scenario", specPath, "-metrics", report)
	if !strings.Contains(out, "Live engine: 3 concurrent word-count jobs") {
		t.Fatalf("missing live header:\n%s", out)
	}
	for _, v := range []string{"live-fifo", "live-fair", "live-priority"} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, v) {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("variant %s missing from output:\n%s", v, out)
		}
		// "done" column is jobs completed: all 3.
		if !strings.Contains(line, "3.0") {
			t.Errorf("variant %s did not complete all jobs: %s", v, line)
		}
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"scenario": "live-e2e"`, `"task_duration_seconds"`, `"queue_wait_seconds"`, `"makespan_seconds"`, `"layer": "engine"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("report missing %s", want)
		}
	}
}

// TestLiveArrivalFlags: explicit arrival flags become a live arrival
// process (compressed wall-clock submission offsets); without them live
// jobs keep the submit-together default; the simulator-only ablation
// selector still fails loudly.
func TestLiveArrivalFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-experiment", "live", "-arrivals", "poisson", "-lambda", "30",
		"-arrival-seed", "7", "-dump-scenario", "-"}, &out, &errb); err != nil {
		t.Fatalf("live poisson arrivals rejected: %v", err)
	}
	for _, want := range []string{`"arrivals": "poisson"`, `"interval_seconds": 120`, `"arrival_seed": 7`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("dumped live spec missing %s:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"-experiment", "live", "-dump-scenario", "-"}, &out, &errb); err != nil {
		t.Fatalf("plain live rejected: %v", err)
	}
	if strings.Contains(out.String(), `"arrivals"`) {
		t.Errorf("default live spec gained an arrival process:\n%s", out.String())
	}

	if err := run([]string{"-experiment", "live", "-ablation", "speccap"}, &out, &errb); err == nil {
		t.Error("moonbench -experiment live -ablation speccap: accepted")
	}
}

// TestListFlags pins that -list names every enumerated flag vocabulary
// (PR 3 made unknown values hard errors; -list is how you discover the
// valid ones).
func TestListFlags(t *testing.T) {
	out := runCLI(t, "-list")
	for _, want := range []string{
		"fig1", "fig4", "table2", "multi", "ablation", "correlated", "all",
		"sort", "wordcount",
		"homestretch", "speccap", "hibernate", "adaptive",
		"fifo", "fair", "weighted",
		"staggered", "poisson",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output is missing %q:\n%s", want, out)
		}
	}
}

// TestListScenarios pins that every builtin appears in -list-scenarios.
func TestListScenarios(t *testing.T) {
	out := runCLI(t, "-list-scenarios")
	for _, s := range scenario.Builtins() {
		if !strings.Contains(out, s.Name) {
			t.Errorf("-list-scenarios is missing %q:\n%s", s.Name, out)
		}
	}
}

// TestScenarioRejectsShapingFlags: -scenario owns the experiment shape;
// combining it with -experiment and friends must fail loudly.
func TestScenarioRejectsShapingFlags(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-scenario", "poisson-mix", "-experiment", "fig4"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "-experiment") {
		t.Fatalf("want a -experiment/-scenario conflict error, got %v", err)
	}
}
