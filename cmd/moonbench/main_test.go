package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// runCLI invokes the full CLI and returns stdout.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("moonbench %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.String()
}

// TestScenarioFileMatchesFlagRun pins the tentpole acceptance criterion:
// a `-scenario <file>` run must be byte-identical to the equivalent flag
// invocation — stdout and the exported metrics report alike — because the
// flag path internally constructs the very spec the file holds.
func TestScenarioFileMatchesFlagRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	dir := t.TempDir()

	cases := []struct {
		name  string
		flags []string
	}{
		{"fig4", []string{"-experiment", "fig4", "-app", "sort", "-scale", "32", "-seeds", "1,2", "-rates", "0.5"}},
		{"multi", []string{"-experiment", "multi", "-app", "sort", "-policy", "fair",
			"-jobs", "2", "-stagger", "30", "-scale", "32", "-seeds", "1", "-rates", "0.5"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flagReport := filepath.Join(dir, tc.name+"-flags.json")
			flagOut := runCLI(t, append(tc.flags, "-metrics", flagReport)...)

			// Export the exact spec the flag run assembled internally,
			// then run it as a file.
			specPath := filepath.Join(dir, tc.name+".scenario.json")
			runCLI(t, append(tc.flags, "-dump-scenario", specPath)...)
			raw, err := os.ReadFile(specPath)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := scenario.Parse(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			fileReport := filepath.Join(dir, tc.name+"-file.json")
			fileOut := runCLI(t, "-scenario", specPath, "-metrics", fileReport)

			if flagOut != fileOut {
				t.Errorf("stdout differs between flag and -scenario runs:\n--- flags ---\n%s\n--- file ---\n%s", flagOut, fileOut)
			}
			a, err := os.ReadFile(flagReport)
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(fileReport)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Error("metrics reports differ between flag and -scenario runs")
			}
			// The report is self-describing: scenario name + spec hash.
			if !bytes.Contains(a, []byte(`"scenario": "`+spec.Name+`"`)) ||
				!bytes.Contains(a, []byte(`"spec_hash": "`+spec.Hash()+`"`)) {
				t.Error("metrics report is missing the scenario provenance stamp")
			}
		})
	}
}

// TestListFlags pins that -list names every enumerated flag vocabulary
// (PR 3 made unknown values hard errors; -list is how you discover the
// valid ones).
func TestListFlags(t *testing.T) {
	out := runCLI(t, "-list")
	for _, want := range []string{
		"fig1", "fig4", "table2", "multi", "ablation", "correlated", "all",
		"sort", "wordcount",
		"homestretch", "speccap", "hibernate", "adaptive",
		"fifo", "fair", "weighted",
		"staggered", "poisson",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output is missing %q:\n%s", want, out)
		}
	}
}

// TestListScenarios pins that every builtin appears in -list-scenarios.
func TestListScenarios(t *testing.T) {
	out := runCLI(t, "-list-scenarios")
	for _, s := range scenario.Builtins() {
		if !strings.Contains(out, s.Name) {
			t.Errorf("-list-scenarios is missing %q:\n%s", s.Name, out)
		}
	}
}

// TestScenarioRejectsShapingFlags: -scenario owns the experiment shape;
// combining it with -experiment and friends must fail loudly.
func TestScenarioRejectsShapingFlags(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-scenario", "poisson-mix", "-experiment", "fig4"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "-experiment") {
		t.Fatalf("want a -experiment/-scenario conflict error, got %v", err)
	}
}
