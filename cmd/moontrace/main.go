// Command moontrace generates and inspects node-availability traces.
//
// Usage:
//
//	moontrace -rate 0.4 -nodes 60 -out traces/          # one file per node
//	moontrace -rate 0.5 -stats                          # print statistics
//	moontrace -fig1                                     # diurnal SDSC-like study
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	var (
		rate     = flag.Float64("rate", 0.4, "target machine-unavailability rate")
		nodes    = flag.Int("nodes", 60, "number of node traces to generate")
		duration = flag.Float64("duration", 8*3600, "trace length in seconds")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("out", "", "directory to write node-<i>.trace files (omit for stdout stats)")
		stats    = flag.Bool("stats", false, "print per-node statistics")
		fig1     = flag.Bool("fig1", false, "print the diurnal 7-day study of the paper's Figure 1")
	)
	flag.Parse()

	if *fig1 {
		days := trace.GenerateFig1(rng.New(*seed), trace.DefaultFig1Config())
		for _, d := range days {
			fmt.Printf("DAY%d (base %.2f):", d.Day, d.Base)
			for _, v := range d.Series {
				fmt.Printf(" %3.0f", v*100)
			}
			fmt.Println()
		}
		return
	}

	traces, err := trace.GenerateFleet(rng.New(*seed), trace.DefaultOutageConfig(*rate), *duration, *nodes)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for i := range traces {
			path := filepath.Join(*out, fmt.Sprintf("node-%03d.trace", i))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if _, err := traces[i].WriteTo(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d traces to %s\n", len(traces), *out)
	}
	if *stats || *out == "" {
		sum, outages := 0.0, 0
		for i := range traces {
			f := traces[i].UnavailableFraction()
			sum += f
			outages += len(traces[i].Outages)
			if *stats {
				fmt.Printf("node %3d: unavailable %.3f, %3d outages, mean outage %5.0fs\n",
					i, f, len(traces[i].Outages), traces[i].MeanOutage())
			}
		}
		fmt.Printf("fleet: %d nodes, mean unavailability %.3f (target %.3f), %d outages total\n",
			len(traces), sum/float64(len(traces)), *rate, outages)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moontrace:", err)
	os.Exit(1)
}
