// Command moonvet machine-checks the repo's determinism and concurrency
// invariants: a multichecker over the project-specific analyzer suite in
// internal/analysis (wallclock, globalrand, detrange, nilmetrics,
// lockatomic).
//
// Usage:
//
//	go run ./cmd/moonvet ./...        # check the whole module
//	go run ./cmd/moonvet ./internal/sim ./internal/scenario/...
//	go run ./cmd/moonvet -list        # describe the analyzers
//
// moonvet exits 0 when the tree is clean, 1 when it has findings, 2 on
// usage or load errors. Findings can be suppressed, one line at a time,
// with a mandatory-reason directive:
//
//	//moonvet:allow <analyzer>[,<analyzer>] <reason>
//
// written at the end of the offending line, or alone on the line above
// it. Suppressions are counted in a summary (written to the file named
// by -summary, or appended to $GITHUB_STEP_SUMMARY in CI) so their
// growth stays visible; a directive that suppresses nothing, names an
// unknown analyzer, or omits its reason is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/moonvet"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers in the suite and exit")
	summaryPath := flag.String("summary", "", "append the suppression summary to this file (defaults to $GITHUB_STEP_SUMMARY if set)")
	flag.Parse()

	if *list {
		for _, a := range moonvet.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	summary := os.Stderr
	if *summaryPath == "" {
		*summaryPath = os.Getenv("GITHUB_STEP_SUMMARY")
	}
	if *summaryPath != "" {
		f, err := os.OpenFile(*summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moonvet:", err)
			os.Exit(2)
		}
		summary = f
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "moonvet:", err)
		os.Exit(2)
	}
	code := moonvet.Main(cwd, flag.Args(), os.Stdout, summary)
	if summary != os.Stderr {
		summary.Close()
	}
	os.Exit(code)
}
