// Command genscenarios writes the canonical JSON export of every built-in
// scenario into a directory (default scenarios/). The shipped files are
// exactly these exports — the golden tests in internal/scenario pin file
// bytes == builtin export, so the directory cannot drift from the code.
//
// Usage:
//
//	go run ./scripts/genscenarios [-dir scenarios]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/scenario"
)

func main() {
	dir := flag.String("dir", "scenarios", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for _, s := range scenario.Builtins() {
		if err := s.Validate(); err != nil {
			fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			fatal(err)
		}
		path := filepath.Join(*dir, s.Name+".json")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%s)\n", path, s.Hash())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genscenarios:", err)
	os.Exit(1)
}
