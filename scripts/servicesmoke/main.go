// Command servicesmoke is the CI client for a running moonbenchd: it
// submits a scenario file, watches /v1/events while the run streams, polls
// the submission to completion, fetches the moon-metrics/v1 report,
// validates it, and writes it out as an artifact.
//
//	moonbenchd -addr 127.0.0.1:8321 &
//	go run ./scripts/servicesmoke -addr http://127.0.0.1:8321 \
//	  -scenario scenarios/live-mix.json -seeds 1 -rates 0.3 -out service_smoke.json
//
// It exits nonzero when any step fails: unreachable service, rejected
// spec, failed run, invalid report, or a silent event stream.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "moonbenchd base URL")
	scenarioPath := flag.String("scenario", "", "moon-scenario/v1 file to submit (required)")
	out := flag.String("out", "", "where to write the fetched report (required)")
	seeds := flag.String("seeds", "", "override the spec's sweep seeds (comma-separated)")
	rates := flag.String("rates", "", "override the spec's sweep rates (comma-separated)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()
	if *scenarioPath == "" || *out == "" {
		fatal(fmt.Errorf("-scenario and -out are required"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	spec, err := loadSpec(*scenarioPath, *seeds, *rates)
	if err != nil {
		fatal(err)
	}
	if err := waitHealthy(ctx, *addr); err != nil {
		fatal(err)
	}

	// Count streamed metric frames for the whole run: the stream is the
	// tentpole's live feed and must carry updates while the run executes.
	var metricFrames, jobFrames atomic.Int64
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	streamDone := make(chan error, 1)
	go func() { streamDone <- watchEvents(streamCtx, *addr, &metricFrames, &jobFrames) }()

	id, err := submit(ctx, *addr, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("submitted scenario as %s\n", id)
	if err := pollDone(ctx, *addr, id); err != nil {
		fatal(err)
	}
	report, err := fetchReport(ctx, *addr, id)
	if err != nil {
		fatal(err)
	}
	if err := validateReport(report); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, report, 0o644); err != nil {
		fatal(err)
	}
	stopStream()
	<-streamDone
	if metricFrames.Load() == 0 {
		fatal(fmt.Errorf("/v1/events delivered no metric frames during the run"))
	}
	fmt.Printf("ok: report %s (%d bytes), %d metric + %d job frames streamed\n",
		*out, len(report), metricFrames.Load(), jobFrames.Load())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "servicesmoke:", err)
	os.Exit(1)
}

// loadSpec reads the scenario file and, when asked, patches the sweep the
// way CI's CLI smokes pass -seeds/-rates.
func loadSpec(path, seeds, rates string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if seeds == "" && rates == "" {
		return raw, nil
	}
	var spec map[string]any
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sweep, _ := spec["sweep"].(map[string]any)
	if sweep == nil {
		sweep = make(map[string]any)
		spec["sweep"] = sweep
	}
	if seeds != "" {
		var vs []uint64
		for _, f := range strings.Split(seeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-seeds: %w", err)
			}
			vs = append(vs, v)
		}
		sweep["seeds"] = vs
	}
	if rates != "" {
		var vs []float64
		for _, f := range strings.Split(rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("-rates: %w", err)
			}
			vs = append(vs, v)
		}
		sweep["rates"] = vs
	}
	return json.Marshal(spec)
}

func waitHealthy(ctx context.Context, addr string) error {
	for {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("service never became healthy at %s: %w (last: %v)", addr, ctx.Err(), err)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func watchEvents(ctx context.Context, addr string, metricFrames, jobFrames *atomic.Int64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/events", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	current := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch current {
			case "metric":
				metricFrames.Add(1)
			case "job":
				jobFrames.Add(1)
			}
		}
	}
	return nil
}

type status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

func submit(ctx context.Context, addr string, spec []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/scenarios", bytes.NewReader(spec))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Moon-Tenant", "ci")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %d %s", resp.StatusCode, raw)
	}
	var st status
	if err := json.Unmarshal(raw, &st); err != nil {
		return "", fmt.Errorf("submit body %q: %w", raw, err)
	}
	return st.ID, nil
}

func pollDone(ctx context.Context, addr, id string) error {
	for {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("poll: %d %s", resp.StatusCode, raw)
		}
		var st status
		if err := json.Unmarshal(raw, &st); err != nil {
			return fmt.Errorf("poll body %q: %w", raw, err)
		}
		switch st.State {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("run failed: %s", st.Error)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("run still %s: %w", st.State, ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}
}

func fetchReport(ctx context.Context, addr, id string) ([]byte, error) {
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs/"+id+"/report", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("report: %d %s", resp.StatusCode, raw)
	}
	return raw, nil
}

// validateReport checks the fetched document is well-formed
// moon-metrics/v1 with at least one experiment entry.
func validateReport(raw []byte) error {
	var doc struct {
		Schema      string `json:"schema"`
		Tool        string `json:"tool"`
		Scenario    string `json:"scenario"`
		Experiments []struct {
			Experiment string `json:"experiment"`
			Variant    string `json:"variant"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("report is not valid JSON: %w", err)
	}
	if doc.Schema != "moon-metrics/v1" {
		return fmt.Errorf("report schema %q, want moon-metrics/v1", doc.Schema)
	}
	if len(doc.Experiments) == 0 {
		return fmt.Errorf("report has no experiment entries")
	}
	return nil
}
