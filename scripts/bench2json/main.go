// Command bench2json converts `go test -bench` text output into a JSON
// document for archiving as a CI artifact.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | tee bench.txt
//	go run ./scripts/bench2json -in bench.txt -out BENCH_results.json
//
// Each benchmark line becomes one record with the iteration count and every
// reported metric (ns/op, B/op, allocs/op, and custom b.ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	in := flag.String("in", "-", "bench output file ('-' for stdin)")
	out := flag.String("out", "-", "JSON destination ('-' for stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	results, err := parse(r)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark records from go test output. A benchmark line
// looks like:
//
//	BenchmarkName-8   100   123456 ns/op   12 B/op   1.9 custom/metric
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{
			Name:       trimMaxprocs(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// trimMaxprocs strips the numeric -N GOMAXPROCS suffix from a benchmark
// name, if present.
func trimMaxprocs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench2json:", err)
	os.Exit(1)
}
